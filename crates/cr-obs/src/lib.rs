//! Process-wide observability for the CRSharing workspace.
//!
//! The serving tier, the exact OPT(m) engines and the step simulator all
//! need the same three primitives, and none of them can afford a heavyweight
//! dependency:
//!
//! * **monotone counters** — lock-free `u64` cells that only move up, so a
//!   snapshot taken at any instant is a valid lower bound of a later one;
//! * **gauges** — signed cells carrying the latest observation of a
//!   quantity that moves both ways (window utilization, starved cores);
//! * **fixed-boundary histograms** — exact integer bucket counts over a
//!   boundary grid chosen at registration time.  There are **no floats on
//!   the recording path** anywhere in this crate: latencies are nanosecond
//!   integers, utilizations are parts-per-million.
//!
//! On top of the metric registry sits lightweight **span tracing**:
//! [`Span::enter`] pushes a name onto a thread-local stack and the RAII
//! guard's drop accumulates wall time under the `/`-joined path of every
//! name on the stack (`"serve.solve/optm.search/optm.round"`).  Drops run
//! during unwinding too, so a panic inside a span neither corrupts the
//! stack nor loses the measurement.
//!
//! # Registries
//!
//! [`Registry::global`] is the process-wide instance every production
//! recording site uses; [`Registry::new`] builds an isolated instance for
//! tests that need exact values without cross-test interference.  Handles
//! ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones — look
//! them up once and cache them near the hot path.
//!
//! # Switching it off
//!
//! Two layers, for two audiences:
//!
//! * the **`obs-off` cargo feature** compiles every recording operation
//!   down to a constant-false branch the optimizer deletes — the
//!   zero-instrumentation build for production-like measurement;
//! * [`Registry::set_enabled`]`(false)` is a **runtime kill switch** on the
//!   same check, letting one process compare instrumented and
//!   uninstrumented throughput (the benchmark pipeline's overhead cell).
//!
//! Snapshots ([`Registry::snapshot`]) are plain sorted data; wire/JSON
//! rendering lives downstream in `cr-service` so this crate stays
//! dependency-free like `cr-lint`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod names;
mod registry;
mod span;

pub use registry::{
    geometric_bounds, Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, MetricValue,
    Registry, Snapshot, SpanSnapshot,
};
pub use span::Span;
