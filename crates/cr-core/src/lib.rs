//! # cr-core — the CRSharing model
//!
//! Core data model for the problem studied in *"Scheduling Shared Continuous
//! Resources on Many-Cores"* (Althaus et al.): `m` identical processors share
//! one continuously divisible resource; each processor carries a fixed
//! sequence of jobs with resource requirements in `[0, 1]`; at every discrete
//! time step the scheduler splits the resource among the processors, and a
//! job granted an `x`-fraction of its requirement advances by `x` units of
//! volume.  The objective is to minimize the makespan.
//!
//! This crate provides:
//!
//! * [`Ratio`] — exact rational arithmetic (all scheduling decisions in this
//!   repository are made exactly, never in floating point);
//! * [`ScaledInstance`] / [`ScaledScheduleBuilder`] — the same requirements
//!   (and workloads) as scaled `u64` units on the denominators' LCM grid,
//!   the representation the exact solver cores *and* the scheduling /
//!   simulation layer in `cr-algos` / `cr-sim` run on (see the `rational`
//!   module docs for the two-representation design);
//! * [`Job`], [`JobId`], [`Instance`], [`InstanceBuilder`] — the problem input;
//! * [`Schedule`], [`ScheduleTrace`], [`ScheduleBuilder`] — resource
//!   assignments, their simulation, validation and makespan;
//! * [`properties`] — the non-wasting / progressive / nested / balanced
//!   schedule properties of Section 4.1;
//! * [`SchedulingGraph`] — the scheduling hypergraph of Section 3.2 with its
//!   connected components and classes;
//! * [`bounds`] — the lower bounds of Observation 1 and Lemmas 5 and 6.
//!
//! The algorithms themselves (RoundRobin, GreedyBalance, the exact dynamic
//! program for two processors and the configuration-domination algorithm for
//! fixed `m`) live in the companion crate `cr-algos`.
//!
//! ## Quick example
//!
//! ```
//! use cr_core::{Instance, Ratio, Schedule};
//!
//! // Two processors; requirements in percent as in the paper's figures.
//! let instance = Instance::unit_from_percentages(&[&[60, 40], &[40, 60]]);
//!
//! // A hand-written schedule: finish one column per step.
//! let schedule = Schedule::new(vec![
//!     vec![Ratio::from_percent(60), Ratio::from_percent(40)],
//!     vec![Ratio::from_percent(40), Ratio::from_percent(60)],
//! ]);
//!
//! assert_eq!(schedule.makespan(&instance).unwrap(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod cancel;
pub mod error;
pub mod hypergraph;
pub mod instance;
pub mod job;
pub mod multi;
pub mod properties;
pub mod rational;
pub mod scaled;
pub mod schedule;
pub mod transform;

pub use cancel::{CancelGate, CancelReason, CancelToken};
pub use error::{InstanceError, ScheduleError};
pub use hypergraph::{Component, SchedulingGraph, UnionFind};
pub use instance::{Instance, InstanceBuilder};
pub use job::{Job, JobId};
pub use multi::{MultiStepper, StepUnit};
pub use properties::{PropertyReport, PropertyViolation};
pub use rational::{ratio, Ratio};
pub use scaled::{ScaledInstance, ScaledScheduleBuilder};
pub use schedule::{Schedule, ScheduleBuilder, ScheduleTrace};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::bounds;
    pub use crate::properties;
    pub use crate::{
        CancelGate, CancelReason, CancelToken, Instance, InstanceBuilder, Job, JobId,
        PropertyReport, Ratio, ScaledInstance, ScaledScheduleBuilder, Schedule, ScheduleBuilder,
        ScheduleTrace, SchedulingGraph,
    };
}
