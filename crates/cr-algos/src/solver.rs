//! The unified, fallible `Solve` surface over every algorithm in this crate.
//!
//! Historically each algorithm family had its own entry points: the
//! infallible [`Scheduler`] trait for the polynomial schedulers, free
//! functions (`opt_m_makespan` / `try_opt_m_makespan` /
//! `opt_m_makespan_rational`, and the `opt_two_*` / `brute_force_*` twins)
//! for the exact engines, and ad-hoc bound helpers.  This module replaces
//! that patchwork with one request/response interface:
//!
//! * [`SolveRequest`] — the instance, a string method selector (a registry
//!   key), an [`EnginePreference`], a [`Budget`] and optional per-processor
//!   arrival times (consumed by the online solvers in `cr-sim`);
//! * [`SolveOutcome`] — makespan and/or schedule, the instance's
//!   [`LowerBounds`], the [`Engine`] actually used, the fallbacks taken and
//!   step/round counters;
//! * [`SolveError`] — every failure the old surfaces expressed as a panic or
//!   crate-specific error ([`SearchError`], grid overflow, infeasible
//!   schedules, exhausted budgets, malformed requests);
//! * [`Solver`] — `fn solve(&SolveRequest) -> Result<SolveOutcome,
//!   SolveError>`, implemented by every heuristic, both exact engines and
//!   the bounds-only evaluator;
//! * [`registry`] — the string-keyed line-up of all offline solvers,
//!   superseding [`standard_line_up`](crate::standard_line_up) (which is
//!   kept as a thin deprecated shim).
//!
//! # Engine preference and fallback contract
//!
//! Every offline method has two interchangeable cores: the scaled-integer
//! hot path (`u64` units on the instance's denominator-LCM grid) and the
//! exact `Ratio` reference path.  [`EnginePreference`] selects between them:
//!
//! * [`EnginePreference::Auto`] (the default) runs the scaled core whenever
//!   the instance's grid fits `u64` and transparently falls back to the
//!   rational core otherwise — or when the scaled configuration search
//!   reports a structured [`SearchError`].  Every fallback taken is recorded
//!   in [`SolveOutcome::fallbacks`], and [`SolveOutcome::engine`] names the
//!   core that actually produced the result.  `Auto` never fails for engine
//!   reasons.
//! * [`EnginePreference::Scaled`] demands the scaled core: if the grid
//!   overflows the request fails with [`SolveError::GridOverflow`], and a
//!   [`SearchError`] surfaces as [`SolveError::RoundTooLarge`] instead of
//!   falling back.
//! * [`EnginePreference::Rational`] runs the retained reference core — the
//!   cross-checking path of the property-test suites.  The online simulator
//!   methods in `cr-sim` are integer-native and reject this preference with
//!   [`SolveError::EngineUnavailable`].
//!
//! Both cores produce identical makespans (enforced by the `proptest_scaled`
//! suites), so the preference changes performance and failure modes, never
//! values.
//!
//! # Budgets
//!
//! [`Budget::max_steps`] caps the schedule length of the answer; requests
//! whose result would exceed it fail with [`SolveError::BudgetExhausted`].
//! Every method enforces it and pre-checks it against the instance's
//! trivial lower bound, so a provably over-budget request fails before any
//! work runs.  [`Budget::max_rounds`] applies only to the `"OptM"`
//! configuration search (the one method with rounds; everyone else ignores
//! it): both the scaled and the rational search genuinely stop expanding
//! after that many rounds, so a deliberately over-budget request costs at
//! most the capped expansion.  The polynomial schedulers always terminate
//! in linear time, so their `max_steps` budget is verified on the finished
//! schedule (a response-size contract, not a watchdog); the online
//! simulator methods enforce `max_steps` as a hard step limit while
//! simulating.
//!
//! [`Budget::max_wall_ms`] is the one *time*-shaped knob: it derives a
//! [`CancelToken`] deadline that every long-running loop observes within
//! [`cr_core::cancel::CHECK_INTERVAL_MS`], failing the request with
//! [`SolveError::DeadlineExceeded`] instead of pinning a worker forever.
//! The serving tier combines it with a per-connection token through
//! [`Solver::solve_cancellable`], so a dying connection also stops its
//! in-flight work.

use crate::brute_force::{brute_force_with_stats_rational_cancellable, SearchStats};
use crate::greedy_balance::GreedyBalance;
use crate::heuristics::{
    EqualShare, LargestRequirementFirst, ProportionalShare, SmallestRequirementFirst,
};
use crate::multi_engine::{self, MultiView};
use crate::multi_sched::{self, PolyKind};
use crate::opt_m;
use crate::opt_two;
use crate::round_robin::RoundRobin;
use crate::scaled_engine::{self, SearchError};
use crate::traits::Scheduler;
use crate::OptM;
use crate::OptTwo;
use cr_core::{
    bounds, CancelReason, CancelToken, Instance, ScaledInstance, ScaledScheduleBuilder, Schedule,
    ScheduleError, SchedulingGraph,
};
use std::fmt;
use std::sync::Arc;

/// Which of a method's two cores a request may run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnginePreference {
    /// Scaled-integer core when the grid fits, rational core otherwise
    /// (fallbacks recorded in [`SolveOutcome::fallbacks`]).  The default.
    #[default]
    Auto,
    /// Scaled-integer core only; fails with [`SolveError::GridOverflow`] /
    /// [`SolveError::RoundTooLarge`] instead of falling back.
    Scaled,
    /// The exact `Ratio` reference core only.
    Rational,
}

impl EnginePreference {
    /// Stable lower-case name used on the service wire.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EnginePreference::Auto => "auto",
            EnginePreference::Scaled => "scaled",
            EnginePreference::Rational => "rational",
        }
    }
}

/// The core that actually produced a [`SolveOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The scaled-integer hot path.
    Scaled,
    /// The exact `Ratio` reference path.
    Rational,
}

impl Engine {
    /// Stable lower-case name used on the service wire.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Scaled => "scaled",
            Engine::Rational => "rational",
        }
    }
}

/// Resource limits of one request (see the module docs for semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Cap on the schedule length (time steps) of the answer.
    pub max_steps: Option<usize>,
    /// Cap on the expanded rounds of the exact configuration search.
    pub max_rounds: Option<usize>,
    /// Wall-clock deadline for the whole request, in milliseconds (the wire
    /// layer's `deadline_ms` field).  Unlike the shape-based caps above this
    /// bounds *time*: every long-running loop checks a [`CancelToken`]
    /// derived from it and stops within [`cr_core::cancel::CHECK_INTERVAL_MS`]
    /// of the deadline, failing with [`SolveError::DeadlineExceeded`].
    pub max_wall_ms: Option<u64>,
}

impl Budget {
    /// No limits (the default).
    pub const UNLIMITED: Budget = Budget {
        max_steps: None,
        max_rounds: None,
        max_wall_ms: None,
    };
}

/// One solve request: an instance plus everything needed to route it.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// The problem instance.
    pub instance: Instance,
    /// Registry key of the method to run (`"GreedyBalance"`, `"OptM"`, …).
    pub method: String,
    /// Which engine core the method may use.
    pub engine: EnginePreference,
    /// Resource limits for this request.
    pub budget: Budget,
    /// Whether the response should carry the full schedule (makespan and
    /// bounds are always computed; schedules can be large on the wire).
    pub want_schedule: bool,
    /// Per-processor arrival times for the online simulator methods: core
    /// `i` is invisible to the policy before step `arrivals[i]`.  Offline
    /// methods reject requests carrying arrivals with
    /// [`SolveError::ArrivalsUnsupported`].
    pub arrivals: Option<Vec<usize>>,
}

impl SolveRequest {
    /// A makespan-only request with default engine preference and no budget.
    #[must_use]
    pub fn new(method: impl Into<String>, instance: Instance) -> Self {
        SolveRequest {
            instance,
            method: method.into(),
            engine: EnginePreference::Auto,
            budget: Budget::UNLIMITED,
            want_schedule: false,
            arrivals: None,
        }
    }

    /// Requests the full schedule in the response.
    #[must_use]
    pub fn with_schedule(mut self) -> Self {
        self.want_schedule = true;
        self
    }

    /// Overrides the engine preference.
    #[must_use]
    pub fn with_engine(mut self, engine: EnginePreference) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches per-processor arrival times (online methods only).
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: Vec<usize>) -> Self {
        self.arrivals = Some(arrivals);
        self
    }
}

/// The instance-only lower bounds reported with every outcome, plus the
/// schedule-derived bound the `"Bounds"` evaluator computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerBounds {
    /// Observation 1: `⌈Σ workload⌉`.
    pub workload: usize,
    /// The longest chain (jobs are processed sequentially per processor).
    pub chain: usize,
    /// The volume-weighted chain bound (relevant for arbitrary job sizes).
    pub volume_chain: usize,
    /// `max(workload, chain, volume_chain)` — the strongest instance-only
    /// bound.
    pub trivial: usize,
    /// The best schedule-derived bound (Observation 1, components, classes
    /// of the scheduling hypergraph); only computed by the `"Bounds"`
    /// method, `None` elsewhere.
    pub best: Option<usize>,
}

impl LowerBounds {
    /// Computes the instance-only bounds.
    #[must_use]
    pub fn compute(instance: &Instance) -> Self {
        LowerBounds {
            workload: bounds::workload_bound_steps(instance),
            chain: bounds::chain_bound(instance),
            volume_chain: bounds::volume_chain_bound(instance),
            trivial: bounds::trivial_lower_bound(instance),
            best: None,
        }
    }
}

/// A successful solve: the answer plus provenance counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// Registry key of the method that ran.
    pub method: String,
    /// The engine core that actually produced the result.
    pub engine: Engine,
    /// Human-readable descriptions of every fallback taken (empty when the
    /// preferred core ran directly).
    pub fallbacks: Vec<String>,
    /// The computed makespan (`None` for the bounds-only evaluator).
    pub makespan: Option<usize>,
    /// The full schedule, when requested and the method produces one.
    pub schedule: Option<Schedule>,
    /// Lower bounds of the instance (with `best` filled by `"Bounds"`).
    pub lower_bounds: LowerBounds,
    /// Schedule steps materialized while solving (0 for value-only methods).
    pub steps: usize,
    /// Search rounds (OPT(m)) or memoized expansions (brute force) the exact
    /// engines performed; 0 for the polynomial schedulers.
    pub rounds: usize,
}

/// Which budget knob a [`SolveError::BudgetExhausted`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// [`Budget::max_steps`].
    Steps,
    /// [`Budget::max_rounds`].
    Rounds,
}

impl BudgetKind {
    /// Stable lower-case name used on the service wire.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetKind::Steps => "steps",
            BudgetKind::Rounds => "rounds",
        }
    }
}

/// Structured failure of one solve request.
///
/// Absorbs every failure mode of the pre-redesign surfaces: the scaled
/// search's [`SearchError`], grid overflow (previously a silent internal
/// fallback or a panic), infeasible schedules (previously
/// `Scheduler::makespan`'s `expect`), exhausted budgets and malformed
/// requests.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The request named a method the registry does not know.
    UnknownMethod {
        /// The unknown registry key.
        method: String,
    },
    /// The method requires unit-size jobs (Theorems 5/6) but the instance
    /// has sized jobs.
    NonUnitJobs {
        /// The rejecting method.
        method: String,
    },
    /// The method requires a fixed processor count (OptTwo: exactly 2).
    WrongProcessorCount {
        /// The rejecting method.
        method: String,
        /// Required processor count.
        expected: usize,
        /// The instance's processor count.
        found: usize,
    },
    /// [`EnginePreference::Scaled`] was demanded but the instance's unit
    /// grid overflows `u64`.
    GridOverflow {
        /// The rejecting method.
        method: String,
    },
    /// The method does not implement the requested engine core at all
    /// (e.g. the integer-native online simulator asked for `Rational`).
    EngineUnavailable {
        /// The rejecting method.
        method: String,
        /// The unavailable preference.
        engine: EnginePreference,
    },
    /// The scaled configuration search outgrew its `u32` parent-index
    /// headroom (absorbs [`SearchError::RoundTooLarge`]).
    RoundTooLarge {
        /// The 0-based round whose node count overflowed.
        round: usize,
        /// Its node count.
        nodes: usize,
    },
    /// The request's [`Budget`] was exhausted before an answer within it
    /// could be produced.
    BudgetExhausted {
        /// The method that ran out of budget.
        method: String,
        /// Which budget knob was exhausted.
        kind: BudgetKind,
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A produced schedule failed validation (absorbs [`ScheduleError`];
    /// previously `Scheduler::makespan` panicked on this).
    Infeasible {
        /// The underlying schedule validation error.
        error: ScheduleError,
    },
    /// An offline method received arrival traces.
    ArrivalsUnsupported {
        /// The rejecting method.
        method: String,
    },
    /// The arrival vector does not have one entry per processor.
    InvalidArrivals {
        /// Processors in the instance.
        expected: usize,
        /// Entries in the arrival vector.
        found: usize,
    },
    /// The request's wall-clock deadline ([`Budget::max_wall_ms`] or the
    /// wire layer's `deadline_ms`) passed — or the request was cancelled
    /// externally (its connection died) — before an answer was produced.
    DeadlineExceeded {
        /// Whether the deadline fired or the request was cancelled.
        reason: CancelReason,
    },
    /// The solver panicked; the panic was contained (sibling requests in
    /// the same batch are unaffected) and surfaced as this structured row.
    Internal {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The request asked for something the multi-resource (`k ≥ 2`) paths
    /// do not produce — today, a full schedule (`want_schedule`): the
    /// [`Schedule`] type is single-resource, so `k ≥ 2` requests report
    /// makespans and bounds only.
    ResourceMismatch {
        /// The rejecting method.
        method: String,
        /// The instance's resource count.
        resources: usize,
    },
    /// [`EnginePreference::Scaled`] was demanded but a resource layer's
    /// unit grid overflows `u64` (the multi-resource analogue of
    /// [`SolveError::GridOverflow`], which keeps naming the base grid).
    ResourceOverflow {
        /// The rejecting method.
        method: String,
    },
}

impl SolveError {
    /// Every stable `kind()` string a solver can emit, in variant order.
    ///
    /// The wire layer (`cr-service`) adds its own transport-level kinds on
    /// top (`bad_request`, `quota_exceeded`, `overloaded`, `draining`); the
    /// union of both lists is the complete error vocabulary of the serving
    /// surface, and `docs/WIRE.md` documents every entry (an enumerated test
    /// in `cr-service` keeps the document honest).
    ///
    /// ```
    /// assert!(cr_algos::solver::SolveError::ALL_KINDS.contains(&"budget_exhausted"));
    /// ```
    pub const ALL_KINDS: [&'static str; 14] = [
        "unknown_method",
        "non_unit_jobs",
        "wrong_processor_count",
        "grid_overflow",
        "engine_unavailable",
        "round_too_large",
        "budget_exhausted",
        "infeasible",
        "arrivals_unsupported",
        "invalid_arrivals",
        "deadline_exceeded",
        "internal_error",
        "resource_mismatch",
        "resource_overflow",
    ];

    /// Stable snake_case discriminant used on the service wire.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SolveError::UnknownMethod { .. } => "unknown_method",
            SolveError::NonUnitJobs { .. } => "non_unit_jobs",
            SolveError::WrongProcessorCount { .. } => "wrong_processor_count",
            SolveError::GridOverflow { .. } => "grid_overflow",
            SolveError::EngineUnavailable { .. } => "engine_unavailable",
            SolveError::RoundTooLarge { .. } => "round_too_large",
            SolveError::BudgetExhausted { .. } => "budget_exhausted",
            SolveError::Infeasible { .. } => "infeasible",
            SolveError::ArrivalsUnsupported { .. } => "arrivals_unsupported",
            SolveError::InvalidArrivals { .. } => "invalid_arrivals",
            SolveError::DeadlineExceeded { .. } => "deadline_exceeded",
            SolveError::Internal { .. } => "internal_error",
            SolveError::ResourceMismatch { .. } => "resource_mismatch",
            SolveError::ResourceOverflow { .. } => "resource_overflow",
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::UnknownMethod { method } => {
                write!(f, "unknown method `{method}` (not in the registry)")
            }
            SolveError::NonUnitJobs { method } => {
                write!(f, "method {method} requires unit-size jobs")
            }
            SolveError::WrongProcessorCount {
                method,
                expected,
                found,
            } => write!(
                f,
                "method {method} requires exactly {expected} processors, instance has {found}"
            ),
            SolveError::GridOverflow { method } => write!(
                f,
                "method {method}: the instance's unit grid overflows u64 and the scaled engine \
                 was demanded (use the auto or rational engine preference)"
            ),
            SolveError::EngineUnavailable { method, engine } => {
                write!(f, "method {method} has no {} engine core", engine.as_str())
            }
            SolveError::RoundTooLarge { round, nodes } => write!(
                f,
                "configuration-search round {round} holds {nodes} nodes, exceeding the u32 \
                 parent-index headroom"
            ),
            SolveError::BudgetExhausted {
                method,
                kind,
                limit,
            } => write!(
                f,
                "method {method} exhausted its {} budget of {limit}",
                kind.as_str()
            ),
            SolveError::Infeasible { error } => {
                write!(f, "produced schedule is infeasible: {error}")
            }
            SolveError::ArrivalsUnsupported { method } => write!(
                f,
                "method {method} is offline and does not accept arrival traces"
            ),
            SolveError::InvalidArrivals { expected, found } => write!(
                f,
                "arrival vector has {found} entries for {expected} processors"
            ),
            SolveError::DeadlineExceeded { reason } => {
                write!(f, "request stopped: {reason}")
            }
            SolveError::Internal { message } => {
                write!(f, "solver panicked (contained): {message}")
            }
            SolveError::ResourceMismatch { method, resources } => write!(
                f,
                "method {method}: schedules are single-resource, so this {resources}-resource \
                 request must not set want_schedule (makespan and bounds only)"
            ),
            SolveError::ResourceOverflow { method } => write!(
                f,
                "method {method}: a resource layer's unit grid overflows u64 and the scaled \
                 engine was demanded (use the auto or rational engine preference)"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<SearchError> for SolveError {
    fn from(err: SearchError) -> Self {
        match err {
            SearchError::RoundTooLarge { round, nodes } => {
                SolveError::RoundTooLarge { round, nodes }
            }
            SearchError::Cancelled { reason } => SolveError::DeadlineExceeded { reason },
        }
    }
}

impl From<CancelReason> for SolveError {
    fn from(reason: CancelReason) -> Self {
        SolveError::DeadlineExceeded { reason }
    }
}

impl From<ScheduleError> for SolveError {
    fn from(error: ScheduleError) -> Self {
        SolveError::Infeasible { error }
    }
}

/// Warm per-instance state shared by every solve against one instance: the
/// scaled-integer conversion of the exact engines, the scheduling layer's
/// grid viability, and the instance-only lower bounds.
///
/// [`Solver::solve`] builds one on the fly; the batch service in
/// `cr-service` memoizes them so repeated requests against one instance pay
/// for the conversion once.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The exact engines' scaled conversion (`None`: grid overflows `u64`).
    pub scaled: Option<Arc<ScaledInstance>>,
    /// Whether the scheduling layer's (requirement × workload) unit grid is
    /// representable — the gate the polynomial schedulers route on.
    pub sched_scaled: bool,
    /// Instance-only lower bounds ([`LowerBounds::best`] left `None`).
    pub lower_bounds: LowerBounds,
}

impl Prepared {
    /// Performs the conversions for `instance`.
    #[must_use]
    pub fn new(instance: &Instance) -> Self {
        Prepared {
            scaled: ScaledInstance::try_new(instance).map(Arc::new),
            sched_scaled: ScaledScheduleBuilder::try_new(instance).is_some(),
            lower_bounds: LowerBounds::compute(instance),
        }
    }
}

/// A solving policy behind the unified request/response interface.
///
/// Implementations must be deterministic: the same request always produces
/// the same outcome, regardless of thread count (the batch service's
/// byte-identity contract builds on this).
pub trait Solver: Send + Sync {
    /// Solves `request` with pre-computed per-instance state.
    ///
    /// # Errors
    ///
    /// Any [`SolveError`] applicable to the method (see the variants).
    fn solve_prepared(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
    ) -> Result<SolveOutcome, SolveError>;

    /// Solves `request`, deriving the per-instance state on the fly.
    ///
    /// # Errors
    ///
    /// Any [`SolveError`] applicable to the method (see the variants).
    fn solve(&self, request: &SolveRequest) -> Result<SolveOutcome, SolveError> {
        self.solve_prepared(request, &Prepared::new(&request.instance))
    }

    /// Solves `request` under cooperative cancellation: the effective token
    /// is `cancel` (typically the serving tier's per-flush token, cancelled
    /// when the requesting connection dies) *combined with* the request's own
    /// [`Budget::max_wall_ms`] deadline.
    ///
    /// The default implementation checks the token once up front and then
    /// runs [`Solver::solve_prepared`] — exactly right for the polynomial
    /// schedulers, whose linear-time runs finish well within any sensible
    /// deadline.  The exact engines override this with genuinely
    /// interruptible searches.
    ///
    /// # Errors
    ///
    /// [`SolveError::DeadlineExceeded`] once the token fires, plus anything
    /// [`Solver::solve_prepared`] reports.
    fn solve_cancellable(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
        cancel: &CancelToken,
    ) -> Result<SolveOutcome, SolveError> {
        let token = cancel.child_with_deadline_ms(request.budget.max_wall_ms);
        token.check()?;
        self.solve_prepared(request, prepared)
    }
}

/// Rejects arrival traces on offline methods.
fn reject_arrivals(method: &str, request: &SolveRequest) -> Result<(), SolveError> {
    if request.arrivals.is_some() {
        return Err(SolveError::ArrivalsUnsupported {
            method: method.to_string(),
        });
    }
    Ok(())
}

/// Fails fast when the trivial lower bound already exceeds a budget cap
/// (any answer would too); `kind` names the knob the cap came from.
fn precheck_cap(
    method: &str,
    kind: BudgetKind,
    cap: Option<usize>,
    lower_bounds: &LowerBounds,
) -> Result<(), SolveError> {
    if let Some(limit) = cap {
        if lower_bounds.trivial > limit {
            return Err(SolveError::BudgetExhausted {
                method: method.to_string(),
                kind,
                limit,
            });
        }
    }
    Ok(())
}

/// Post-hoc `max_steps` check on a finished answer.
fn check_steps_budget(method: &str, budget: &Budget, makespan: usize) -> Result<(), SolveError> {
    if let Some(limit) = budget.max_steps {
        if makespan > limit {
            return Err(SolveError::BudgetExhausted {
                method: method.to_string(),
                kind: BudgetKind::Steps,
                limit,
            });
        }
    }
    Ok(())
}

/// The standard fallback note recorded when `Auto` routes around an
/// unrepresentable grid.
fn grid_fallback_note() -> String {
    "unit grid overflows u64: fell back to the rational core".to_string()
}

/// The multi-resource analogue of [`grid_fallback_note`]: some layer's
/// per-resource grid overflowed.
fn multi_grid_fallback_note() -> String {
    "a resource layer's unit grid overflows u64: fell back to the rational core".to_string()
}

/// Rejects `want_schedule` on multi-resource requests: [`Schedule`] is
/// single-resource, so `k ≥ 2` answers are makespan-and-bounds only.
fn reject_multi_schedule(method: &str, request: &SolveRequest) -> Result<(), SolveError> {
    if request.want_schedule {
        return Err(SolveError::ResourceMismatch {
            method: method.to_string(),
            resources: request.instance.resources(),
        });
    }
    Ok(())
}

/// The shared engine-routing contract of the scheduling-layer methods:
/// picks the scaled or rational schedule producer per the preference and
/// the grid viability, recording any `Auto` fallback taken.
fn route_schedule(
    method: &str,
    engine: EnginePreference,
    sched_scaled: bool,
    scaled_schedule: &dyn Fn() -> Schedule,
    rational_schedule: &dyn Fn() -> Schedule,
) -> Result<(Engine, Vec<String>, Schedule), SolveError> {
    match engine {
        EnginePreference::Scaled => {
            if !sched_scaled {
                return Err(SolveError::GridOverflow {
                    method: method.to_string(),
                });
            }
            Ok((Engine::Scaled, Vec::new(), scaled_schedule()))
        }
        EnginePreference::Rational => Ok((Engine::Rational, Vec::new(), rational_schedule())),
        EnginePreference::Auto => {
            if sched_scaled {
                Ok((Engine::Scaled, Vec::new(), scaled_schedule()))
            } else {
                Ok((
                    Engine::Rational,
                    vec![grid_fallback_note()],
                    rational_schedule(),
                ))
            }
        }
    }
}

/// Shared solve logic of the six polynomial schedulers: engine routing over
/// the (scaled schedule, rational schedule) pair, feasibility validation and
/// budget enforcement.  `max_rounds` does not apply (there is no search);
/// only `max_steps` is enforced.
///
/// Multi-resource (`k ≥ 2`) instances route to the per-resource runners in
/// [`multi_sched`] instead; the scalar schedulers below stay the `k = 1`
/// production fast path untouched.
fn solve_polynomial(
    method: &str,
    kind: PolyKind,
    request: &SolveRequest,
    prepared: &Prepared,
    scaled_schedule: &dyn Fn(&Instance) -> Schedule,
    rational_schedule: &dyn Fn(&Instance) -> Schedule,
) -> Result<SolveOutcome, SolveError> {
    reject_arrivals(method, request)?;
    precheck_cap(
        method,
        BudgetKind::Steps,
        request.budget.max_steps,
        &prepared.lower_bounds,
    )?;
    if request.instance.resources() > 1 {
        return solve_polynomial_multi(method, kind, request, prepared);
    }
    let instance = &request.instance;
    let (engine, fallbacks, schedule) = route_schedule(
        method,
        request.engine,
        prepared.sched_scaled,
        &|| scaled_schedule(instance),
        &|| rational_schedule(instance),
    )?;
    let makespan = schedule.makespan(instance)?;
    check_steps_budget(method, &request.budget, makespan)?;
    Ok(SolveOutcome {
        method: method.to_string(),
        engine,
        fallbacks,
        makespan: Some(makespan),
        steps: schedule.num_steps(),
        rounds: 0,
        schedule: request.want_schedule.then_some(schedule),
        lower_bounds: prepared.lower_bounds,
    })
}

/// The multi-resource (`k ≥ 2`) polynomial path: runs the heuristic's
/// per-resource share rule on the [`cr_core::MultiStepper`] and reports the
/// makespan.  Schedules are not produced ([`SolveError::ResourceMismatch`]);
/// the engine preference routes between the per-layer scaled grids and the
/// exact rational stepper with the usual `Auto` fallback contract.
fn solve_polynomial_multi(
    method: &str,
    kind: PolyKind,
    request: &SolveRequest,
    prepared: &Prepared,
) -> Result<SolveOutcome, SolveError> {
    reject_multi_schedule(method, request)?;
    let instance = &request.instance;
    let (engine, fallbacks, makespan) = match request.engine {
        EnginePreference::Scaled => match multi_sched::multi_makespan_scaled(kind, instance) {
            Some(value) => (Engine::Scaled, Vec::new(), value),
            None => {
                return Err(SolveError::ResourceOverflow {
                    method: method.to_string(),
                })
            }
        },
        EnginePreference::Rational => (
            Engine::Rational,
            Vec::new(),
            multi_sched::multi_makespan_rational(kind, instance),
        ),
        EnginePreference::Auto => match multi_sched::multi_makespan_scaled(kind, instance) {
            Some(value) => (Engine::Scaled, Vec::new(), value),
            None => (
                Engine::Rational,
                vec![multi_grid_fallback_note()],
                multi_sched::multi_makespan_rational(kind, instance),
            ),
        },
    };
    check_steps_budget(method, &request.budget, makespan)?;
    Ok(SolveOutcome {
        method: method.to_string(),
        engine,
        fallbacks,
        makespan: Some(makespan),
        steps: makespan,
        rounds: 0,
        schedule: None,
        lower_bounds: prepared.lower_bounds,
    })
}

/// The multi-resource (`k ≥ 2`) exact path shared by `OptTwo`, `OptM` and
/// `BruteForce`: one configuration search over per-resource capacities (see
/// [`multi_engine`]'s module docs for the normalized step class and its
/// exactness caveat).  Value-only — `want_schedule` is rejected with
/// [`SolveError::ResourceMismatch`].  `max_rounds` applies to `"OptM"` just
/// as on the scalar path; the others ignore it.
fn solve_exact_multi(
    method: &str,
    request: &SolveRequest,
    prepared: &Prepared,
    token: &CancelToken,
) -> Result<SolveOutcome, SolveError> {
    reject_multi_schedule(method, request)?;
    let instance = &request.instance;
    let round_cap = if method == "OptM" {
        precheck_cap(
            method,
            BudgetKind::Rounds,
            request.budget.max_rounds,
            &prepared.lower_bounds,
        )?;
        request.budget.max_rounds
    } else {
        None
    };
    let (engine, fallbacks, result) = match (request.engine, &prepared.scaled) {
        (EnginePreference::Scaled, None) => {
            return Err(SolveError::ResourceOverflow {
                method: method.to_string(),
            })
        }
        (EnginePreference::Scaled | EnginePreference::Auto, Some(scaled)) => {
            let view = MultiView::from_scaled(scaled);
            (
                Engine::Scaled,
                Vec::new(),
                multi_engine::search_cancellable(&view, round_cap, token)?,
            )
        }
        (EnginePreference::Auto, None) => {
            let view = MultiView::rational(instance);
            (
                Engine::Rational,
                vec![multi_grid_fallback_note()],
                multi_engine::search_cancellable(&view, round_cap, token)?,
            )
        }
        (EnginePreference::Rational, _) => {
            let view = MultiView::rational(instance);
            (
                Engine::Rational,
                Vec::new(),
                multi_engine::search_cancellable(&view, round_cap, token)?,
            )
        }
    };
    let Some(found) = result else {
        return Err(SolveError::BudgetExhausted {
            method: method.to_string(),
            kind: BudgetKind::Rounds,
            // lint: allow(panic_hygiene) — Ok(None) is only produced when the max_rounds cap cut the search, so the cap is present
            limit: request.budget.max_rounds.expect("cap produced the cutoff"),
        });
    };
    check_steps_budget(method, &request.budget, found.makespan)?;
    Ok(SolveOutcome {
        method: method.to_string(),
        engine,
        fallbacks,
        makespan: Some(found.makespan),
        steps: 0,
        // BruteForce reports expansions everywhere; the round-shaped
        // searches report rounds (== makespan), matching the scalar paths.
        rounds: if method == "BruteForce" {
            found.expanded
        } else {
            found.makespan
        },
        schedule: None,
        lower_bounds: prepared.lower_bounds,
    })
}

macro_rules! impl_polynomial_solver {
    ($ty:ty, $name:literal, $kind:expr) => {
        impl Solver for $ty {
            fn solve_prepared(
                &self,
                request: &SolveRequest,
                prepared: &Prepared,
            ) -> Result<SolveOutcome, SolveError> {
                solve_polynomial(
                    $name,
                    $kind,
                    request,
                    prepared,
                    &|i| Scheduler::schedule(self, i),
                    &|i| self.schedule_rational(i),
                )
            }
        }
    };
}

impl_polynomial_solver!(GreedyBalance, "GreedyBalance", PolyKind::GreedyBalance);
impl_polynomial_solver!(RoundRobin, "RoundRobin", PolyKind::RoundRobin);
impl_polynomial_solver!(EqualShare, "EqualShare", PolyKind::EqualShare);
impl_polynomial_solver!(
    ProportionalShare,
    "ProportionalShare",
    PolyKind::ProportionalShare
);
impl_polynomial_solver!(
    LargestRequirementFirst,
    "LargestRequirementFirst",
    PolyKind::LargestRequirementFirst
);
impl_polynomial_solver!(
    SmallestRequirementFirst,
    "SmallestRequirementFirst",
    PolyKind::SmallestRequirementFirst
);

/// Validates the unit-size precondition of the exact engines.
fn require_unit(method: &str, instance: &Instance) -> Result<(), SolveError> {
    if !instance.is_unit_size() {
        return Err(SolveError::NonUnitJobs {
            method: method.to_string(),
        });
    }
    Ok(())
}

impl Solver for OptTwo {
    fn solve_prepared(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
    ) -> Result<SolveOutcome, SolveError> {
        self.solve_cancellable(request, prepared, &CancelToken::never())
    }

    fn solve_cancellable(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
        cancel: &CancelToken,
    ) -> Result<SolveOutcome, SolveError> {
        const METHOD: &str = "OptTwo";
        reject_arrivals(METHOD, request)?;
        let token = cancel.child_with_deadline_ms(request.budget.max_wall_ms);
        // Fail fast on an already-fired token; the DP's own polls are
        // strided and would let a tiny table run to completion.
        token.check()?;
        let instance = &request.instance;
        if instance.processors() != 2 {
            return Err(SolveError::WrongProcessorCount {
                method: METHOD.to_string(),
                expected: 2,
                found: instance.processors(),
            });
        }
        require_unit(METHOD, instance)?;
        // The DP has no configuration-search rounds, so only max_steps
        // applies.
        precheck_cap(
            METHOD,
            BudgetKind::Steps,
            request.budget.max_steps,
            &prepared.lower_bounds,
        )?;
        if instance.resources() > 1 {
            // The two-processor DP is single-resource; multi-resource
            // requests run the shared configuration search instead (for
            // m = 2 it explores exactly the two-processor choice space).
            return solve_exact_multi(METHOD, request, prepared, &token);
        }

        let (engine, fallbacks, decisions) = match (request.engine, &prepared.scaled) {
            (EnginePreference::Scaled, None) => {
                return Err(SolveError::GridOverflow {
                    method: METHOD.to_string(),
                })
            }
            (EnginePreference::Scaled | EnginePreference::Auto, Some(scaled)) => (
                Engine::Scaled,
                Vec::new(),
                opt_two::scaled_decisions_cancellable(scaled, &token)?,
            ),
            (EnginePreference::Auto, None) => (
                Engine::Rational,
                vec![grid_fallback_note()],
                opt_two::rational_decisions_cancellable(instance, &token)?,
            ),
            (EnginePreference::Rational, _) => (
                Engine::Rational,
                Vec::new(),
                opt_two::rational_decisions_cancellable(instance, &token)?,
            ),
        };
        let makespan = decisions.len();
        check_steps_budget(METHOD, &request.budget, makespan)?;
        let schedule = request
            .want_schedule
            .then(|| opt_two::replay_decisions(instance, decisions));
        Ok(SolveOutcome {
            method: METHOD.to_string(),
            engine,
            fallbacks,
            makespan: Some(makespan),
            steps: schedule.as_ref().map_or(0, Schedule::num_steps),
            rounds: 0,
            schedule,
            lower_bounds: prepared.lower_bounds,
        })
    }
}

impl Solver for OptM {
    fn solve_prepared(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
    ) -> Result<SolveOutcome, SolveError> {
        self.solve_cancellable(request, prepared, &CancelToken::never())
    }

    fn solve_cancellable(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
        cancel: &CancelToken,
    ) -> Result<SolveOutcome, SolveError> {
        const METHOD: &str = "OptM";
        reject_arrivals(METHOD, request)?;
        let token = cancel.child_with_deadline_ms(request.budget.max_wall_ms);
        let instance = &request.instance;
        require_unit(METHOD, instance)?;
        // A round of the configuration search advances the makespan by one,
        // so both caps are makespan-shaped here and prechecked against the
        // trivial lower bound.
        precheck_cap(
            METHOD,
            BudgetKind::Steps,
            request.budget.max_steps,
            &prepared.lower_bounds,
        )?;
        precheck_cap(
            METHOD,
            BudgetKind::Rounds,
            request.budget.max_rounds,
            &prepared.lower_bounds,
        )?;
        if instance.resources() > 1 {
            return solve_exact_multi(METHOD, request, prepared, &token);
        }

        // The scaled configuration search, budget-capped when requested and
        // interruptible through the request's token.
        let run_scaled = |scaled: &ScaledInstance| -> Result<
            Option<Vec<Vec<scaled_engine::ScaledNode>>>,
            SearchError,
        > {
            scaled_engine::run_search_cancellable(scaled, request.budget.max_rounds, &token)
        };

        let scaled_result = match (request.engine, &prepared.scaled) {
            (EnginePreference::Rational, _) | (EnginePreference::Auto, None) => None,
            (EnginePreference::Scaled, None) => {
                return Err(SolveError::GridOverflow {
                    method: METHOD.to_string(),
                })
            }
            (EnginePreference::Scaled | EnginePreference::Auto, Some(scaled)) => {
                Some((scaled, run_scaled(scaled)))
            }
        };

        let mut fallbacks = Vec::new();
        match scaled_result {
            Some((scaled, Ok(Some(rounds)))) => {
                let makespan = scaled_engine::search_makespan(scaled, &rounds);
                check_steps_budget(METHOD, &request.budget, makespan)?;
                let schedule = request
                    .want_schedule
                    .then(|| scaled_engine::search_schedule(instance, scaled, &rounds));
                Ok(SolveOutcome {
                    method: METHOD.to_string(),
                    engine: Engine::Scaled,
                    fallbacks,
                    makespan: Some(makespan),
                    steps: schedule.as_ref().map_or(0, Schedule::num_steps),
                    rounds: rounds.len() - 1,
                    schedule,
                    lower_bounds: prepared.lower_bounds,
                })
            }
            Some((_, Ok(None))) => {
                // lint: allow(panic_hygiene) — Ok(None) is only produced when the max_rounds cap cut the search, so the cap is present
                let limit = request.budget.max_rounds.expect("cap produced the cutoff");
                Err(SolveError::BudgetExhausted {
                    method: METHOD.to_string(),
                    kind: BudgetKind::Rounds,
                    limit,
                })
            }
            Some((_, Err(SearchError::Cancelled { reason }))) => {
                // A fired deadline is terminal: recovering through the (even
                // slower) rational search would only blow through it again.
                Err(SolveError::DeadlineExceeded { reason })
            }
            Some((_, Err(err))) if request.engine == EnginePreference::Scaled => {
                Err(SolveError::from(err))
            }
            other => {
                // The rational reference search: requested explicitly, the
                // grid fallback, or the recovery from a SearchError.
                if let Some((_, Err(err))) = other {
                    fallbacks.push(format!("{err}: fell back to the rational search"));
                } else if request.engine == EnginePreference::Auto {
                    fallbacks.push(grid_fallback_note());
                }
                // One rational search answers both makespan and schedule;
                // it honors the round cap too, stopping after `cap` rounds
                // instead of running to completion.
                let Some((makespan, schedule)) = opt_m::solve_rational_cancellable(
                    instance,
                    request.budget.max_rounds,
                    request.want_schedule,
                    &token,
                )?
                else {
                    return Err(SolveError::BudgetExhausted {
                        method: METHOD.to_string(),
                        kind: BudgetKind::Rounds,
                        // lint: allow(panic_hygiene) — Ok(None) is only produced when the max_rounds cap cut the search, so the cap is present
                        limit: request.budget.max_rounds.expect("cap produced the cutoff"),
                    });
                };
                check_steps_budget(METHOD, &request.budget, makespan)?;
                Ok(SolveOutcome {
                    method: METHOD.to_string(),
                    engine: Engine::Rational,
                    fallbacks,
                    makespan: Some(makespan),
                    steps: schedule.as_ref().map_or(0, Schedule::num_steps),
                    rounds: makespan,
                    schedule,
                    lower_bounds: prepared.lower_bounds,
                })
            }
        }
    }
}

/// The exhaustive reference solver behind the `"BruteForce"` registry key.
///
/// Value-only: it reports the optimal makespan and search statistics but
/// never reconstructs a schedule (use `"OptM"` for schedules).
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceSolver;

impl Solver for BruteForceSolver {
    fn solve_prepared(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
    ) -> Result<SolveOutcome, SolveError> {
        self.solve_cancellable(request, prepared, &CancelToken::never())
    }

    fn solve_cancellable(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
        cancel: &CancelToken,
    ) -> Result<SolveOutcome, SolveError> {
        const METHOD: &str = "BruteForce";
        reject_arrivals(METHOD, request)?;
        let token = cancel.child_with_deadline_ms(request.budget.max_wall_ms);
        let instance = &request.instance;
        require_unit(METHOD, instance)?;
        // The memoized DFS has no rounds; only max_steps applies.
        precheck_cap(
            METHOD,
            BudgetKind::Steps,
            request.budget.max_steps,
            &prepared.lower_bounds,
        )?;
        if instance.resources() > 1 {
            return solve_exact_multi(METHOD, request, prepared, &token);
        }

        let (engine, fallbacks, makespan, stats) = match (request.engine, &prepared.scaled) {
            (EnginePreference::Scaled, None) => {
                return Err(SolveError::GridOverflow {
                    method: METHOD.to_string(),
                })
            }
            (EnginePreference::Scaled | EnginePreference::Auto, Some(scaled)) => {
                let (value, states, expansions) =
                    scaled_engine::brute_force_cancellable(scaled, &token)?;
                (
                    Engine::Scaled,
                    Vec::new(),
                    value,
                    SearchStats { states, expansions },
                )
            }
            (EnginePreference::Auto, None) => {
                let (value, stats) = brute_force_with_stats_rational_cancellable(instance, &token)?;
                (Engine::Rational, vec![grid_fallback_note()], value, stats)
            }
            (EnginePreference::Rational, _) => {
                let (value, stats) = brute_force_with_stats_rational_cancellable(instance, &token)?;
                (Engine::Rational, Vec::new(), value, stats)
            }
        };
        check_steps_budget(METHOD, &request.budget, makespan)?;
        Ok(SolveOutcome {
            method: METHOD.to_string(),
            engine,
            fallbacks,
            makespan: Some(makespan),
            steps: 0,
            rounds: stats.expansions,
            schedule: None,
            lower_bounds: prepared.lower_bounds,
        })
    }
}

/// The bounds-only evaluator behind the `"Bounds"` registry key.
///
/// Reports no makespan; instead it fills [`LowerBounds::best`] — the best
/// schedule-derived lower bound, computed from a GreedyBalance schedule's
/// scheduling hypergraph (Observation 1, component and class bounds).  The
/// engine preference routes the internal GreedyBalance schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoundsOnly;

impl Solver for BoundsOnly {
    fn solve_prepared(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
    ) -> Result<SolveOutcome, SolveError> {
        const METHOD: &str = "Bounds";
        reject_arrivals(METHOD, request)?;
        let instance = &request.instance;
        if instance.resources() > 1 {
            // The scheduling hypergraph is single-resource; a k ≥ 2 request
            // reports the instance-only bounds (whose workload component
            // already takes the binding resource) as the best bound.
            let mut lower_bounds = prepared.lower_bounds;
            lower_bounds.best = Some(lower_bounds.trivial);
            return Ok(SolveOutcome {
                method: METHOD.to_string(),
                engine: Engine::Rational,
                fallbacks: Vec::new(),
                makespan: None,
                steps: 0,
                rounds: 0,
                schedule: None,
                lower_bounds,
            });
        }
        let greedy = GreedyBalance::new();
        let (engine, fallbacks, schedule) = route_schedule(
            METHOD,
            request.engine,
            prepared.sched_scaled,
            &|| Scheduler::schedule(&greedy, instance),
            &|| greedy.schedule_rational(instance),
        )?;
        let trace = schedule.trace(instance)?;
        let graph = SchedulingGraph::build(instance, &trace);
        let mut lower_bounds = prepared.lower_bounds;
        lower_bounds.best = Some(bounds::best_lower_bound(instance, &graph));
        Ok(SolveOutcome {
            method: METHOD.to_string(),
            engine,
            fallbacks,
            makespan: None,
            steps: 0,
            rounds: 0,
            schedule: None,
            lower_bounds,
        })
    }
}

/// Registry keys of the six polynomial schedulers, in line-up order.
pub const POLY_METHODS: [&str; 6] = [
    "GreedyBalance",
    "RoundRobin",
    "EqualShare",
    "ProportionalShare",
    "LargestRequirementFirst",
    "SmallestRequirementFirst",
];

/// A string-keyed line-up of [`Solver`]s.
///
/// Registration order is preserved (and is the iteration order of
/// [`Registry::names`]); keys are unique — re-registering a key replaces the
/// previous solver.
#[derive(Default)]
pub struct Registry {
    entries: Vec<(String, Box<dyn Solver>)>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("methods", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers `solver` under `key`, replacing any previous entry.
    pub fn register(&mut self, key: impl Into<String>, solver: Box<dyn Solver>) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = solver;
        } else {
            self.entries.push((key, solver));
        }
    }

    /// Looks up a solver by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&dyn Solver> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, s)| s.as_ref())
    }

    /// The registered keys, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Dispatches `request` to the solver registered under its method key.
    ///
    /// # Errors
    ///
    /// [`SolveError::UnknownMethod`] for unregistered keys, plus anything
    /// the solver itself reports.
    pub fn solve(&self, request: &SolveRequest) -> Result<SolveOutcome, SolveError> {
        self.solve_prepared(request, &Prepared::new(&request.instance))
    }

    /// [`Registry::solve`] with pre-computed per-instance state (the batch
    /// service's memoized path).
    ///
    /// # Errors
    ///
    /// [`SolveError::UnknownMethod`] for unregistered keys, plus anything
    /// the solver itself reports.
    pub fn solve_prepared(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
    ) -> Result<SolveOutcome, SolveError> {
        let Some(solver) = self.get(&request.method) else {
            crate::obs::record_dispatch(&request.method, false, false);
            return Err(SolveError::UnknownMethod {
                method: request.method.clone(),
            });
        };
        let result = solver.solve_prepared(request, prepared);
        crate::obs::record_dispatch(&request.method, true, result.is_ok());
        result
    }

    /// [`Registry::solve_prepared`] under cooperative cancellation (see
    /// [`Solver::solve_cancellable`]) — the serving tier's entry point.
    ///
    /// # Errors
    ///
    /// [`SolveError::UnknownMethod`] for unregistered keys,
    /// [`SolveError::DeadlineExceeded`] once the token fires, plus anything
    /// the solver itself reports.
    pub fn solve_cancellable(
        &self,
        request: &SolveRequest,
        prepared: &Prepared,
        cancel: &CancelToken,
    ) -> Result<SolveOutcome, SolveError> {
        let Some(solver) = self.get(&request.method) else {
            crate::obs::record_dispatch(&request.method, false, false);
            return Err(SolveError::UnknownMethod {
                method: request.method.clone(),
            });
        };
        let result = solver.solve_cancellable(request, prepared, cancel);
        crate::obs::record_dispatch(&request.method, true, result.is_ok());
        result
    }
}

/// The standard offline line-up: the six polynomial schedulers, both exact
/// engines, the exhaustive reference and the bounds-only evaluator.
///
/// Supersedes [`standard_line_up`](crate::standard_line_up); the online
/// simulator methods register on top via `cr_sim::register_online`.
#[must_use]
pub fn registry() -> Registry {
    let mut r = Registry::new();
    r.register("GreedyBalance", Box::new(GreedyBalance::new()));
    r.register("RoundRobin", Box::new(RoundRobin::new()));
    r.register("EqualShare", Box::new(EqualShare::new()));
    r.register("ProportionalShare", Box::new(ProportionalShare::new()));
    r.register(
        "LargestRequirementFirst",
        Box::new(LargestRequirementFirst::new()),
    );
    r.register(
        "SmallestRequirementFirst",
        Box::new(SmallestRequirementFirst::new()),
    );
    r.register("OptTwo", Box::new(OptTwo::new()));
    r.register("OptM", Box::new(OptM::new()));
    r.register("BruteForce", Box::new(BruteForceSolver));
    r.register("Bounds", Box::new(BoundsOnly));
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::Ratio;

    fn fig_like() -> Instance {
        Instance::unit_from_percentages(&[&[60, 40, 80], &[30, 90, 10]])
    }

    #[test]
    fn registry_contains_every_offline_method() {
        let reg = registry();
        let names: Vec<&str> = reg.names().collect();
        for method in POLY_METHODS {
            assert!(names.contains(&method), "{method} missing");
        }
        for method in ["OptTwo", "OptM", "BruteForce", "Bounds"] {
            assert!(names.contains(&method), "{method} missing");
        }
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn unknown_method_is_a_structured_error() {
        let err = registry()
            .solve(&SolveRequest::new("NoSuchMethod", fig_like()))
            .unwrap_err();
        assert_eq!(err.kind(), "unknown_method");
    }

    #[test]
    fn every_method_agrees_with_its_legacy_entry_point() {
        let reg = registry();
        let inst = fig_like();
        for method in POLY_METHODS {
            let outcome = reg.solve(&SolveRequest::new(method, inst.clone())).unwrap();
            assert_eq!(outcome.engine, Engine::Scaled);
            assert!(outcome.fallbacks.is_empty());
            assert!(outcome.makespan.unwrap() >= outcome.lower_bounds.trivial);
        }
        let opt_m_outcome = reg.solve(&SolveRequest::new("OptM", inst.clone())).unwrap();
        assert_eq!(
            opt_m_outcome.makespan.unwrap(),
            crate::opt_m_makespan(&inst)
        );
        assert_eq!(opt_m_outcome.rounds, opt_m_outcome.makespan.unwrap());
        let opt_two_outcome = reg
            .solve(&SolveRequest::new("OptTwo", inst.clone()))
            .unwrap();
        assert_eq!(
            opt_two_outcome.makespan.unwrap(),
            crate::opt_two_makespan(&inst)
        );
        let bf = reg
            .solve(&SolveRequest::new("BruteForce", inst.clone()))
            .unwrap();
        assert_eq!(bf.makespan, opt_m_outcome.makespan);
        assert!(bf.rounds > 0, "brute force reports expansions");
    }

    #[test]
    fn engine_preferences_agree_on_values() {
        let reg = registry();
        let inst = fig_like();
        for method in ["GreedyBalance", "OptM", "OptTwo", "BruteForce"] {
            let auto = reg.solve(&SolveRequest::new(method, inst.clone())).unwrap();
            let scaled = reg
                .solve(
                    &SolveRequest::new(method, inst.clone()).with_engine(EnginePreference::Scaled),
                )
                .unwrap();
            let rational = reg
                .solve(
                    &SolveRequest::new(method, inst.clone())
                        .with_engine(EnginePreference::Rational),
                )
                .unwrap();
            assert_eq!(auto.makespan, scaled.makespan, "{method}");
            assert_eq!(auto.makespan, rational.makespan, "{method}");
            assert_eq!(rational.engine, Engine::Rational);
            assert_eq!(scaled.engine, Engine::Scaled);
        }
    }

    #[test]
    fn schedules_are_returned_only_on_request() {
        let reg = registry();
        let inst = fig_like();
        let without = reg.solve(&SolveRequest::new("OptM", inst.clone())).unwrap();
        assert!(without.schedule.is_none());
        let with = reg
            .solve(&SolveRequest::new("OptM", inst.clone()).with_schedule())
            .unwrap();
        let schedule = with.schedule.expect("schedule requested");
        assert_eq!(schedule.makespan(&inst).unwrap(), with.makespan.unwrap());
        assert_eq!(with.steps, schedule.num_steps());
    }

    #[test]
    fn round_budget_cuts_the_search_off() {
        // Three full-resource jobs: makespan 3, so a 1-round budget fails.
        let inst = Instance::unit_from_percentages(&[&[100], &[100], &[100]]);
        let err = registry()
            .solve(
                &SolveRequest::new("OptM", inst.clone()).with_budget(Budget {
                    max_rounds: Some(1),
                    ..Budget::UNLIMITED
                }),
            )
            .unwrap_err();
        match err {
            SolveError::BudgetExhausted { kind, limit, .. } => {
                assert_eq!(limit, 1);
                assert_eq!(kind.as_str(), "rounds");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // A sufficient budget succeeds with the exact value.
        let ok = registry()
            .solve(
                &SolveRequest::new("OptM", inst.clone()).with_budget(Budget {
                    max_rounds: Some(3),
                    ..Budget::UNLIMITED
                }),
            )
            .unwrap();
        assert_eq!(ok.makespan, Some(3));

        // The rational reference search honors the cap too — the capped
        // entry point (checked directly, below the precheck layer) stops
        // expanding at the cap instead of running to completion, and the
        // registry path reports the same structured error.
        assert_eq!(opt_m::solve_rational(&inst, Some(1), false), None);
        assert_eq!(
            opt_m::solve_rational(&inst, Some(3), false),
            Some((3, None))
        );
        let err = registry()
            .solve(
                &SolveRequest::new("OptM", inst)
                    .with_engine(EnginePreference::Rational)
                    .with_budget(Budget {
                        max_rounds: Some(1),
                        ..Budget::UNLIMITED
                    }),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "budget_exhausted");
    }

    #[test]
    fn round_budget_is_ignored_by_methods_without_rounds() {
        // Chain of three 100% jobs on one processor: makespan 3.  max_rounds
        // must not reject methods that have no configuration search.
        let inst = Instance::unit_from_percentages(&[&[100], &[100], &[100]]);
        let budget = Budget {
            max_rounds: Some(1),
            ..Budget::UNLIMITED
        };
        for method in ["GreedyBalance", "EqualShare", "BruteForce"] {
            let outcome = registry()
                .solve(&SolveRequest::new(method, inst.clone()).with_budget(budget))
                .unwrap_or_else(|e| panic!("{method} must ignore max_rounds: {e}"));
            assert_eq!(outcome.makespan, Some(3), "{method}");
        }
    }

    #[test]
    fn step_budget_applies_to_heuristics() {
        let inst = Instance::unit_from_percentages(&[&[100], &[100], &[100]]);
        let err = registry()
            .solve(
                &SolveRequest::new("EqualShare", inst.clone()).with_budget(Budget {
                    max_steps: Some(1),
                    ..Budget::UNLIMITED
                }),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "budget_exhausted");
    }

    #[test]
    fn opt_two_validates_its_preconditions() {
        let three = Instance::unit_from_percentages(&[&[50], &[50], &[50]]);
        let err = registry()
            .solve(&SolveRequest::new("OptTwo", three))
            .unwrap_err();
        assert_eq!(err.kind(), "wrong_processor_count");

        let sized = Instance::new(vec![vec![cr_core::Job::new(
            Ratio::from_percent(50),
            Ratio::new(3, 2),
        )]])
        .unwrap();
        let err = registry()
            .solve(&SolveRequest::new("OptM", sized))
            .unwrap_err();
        assert_eq!(err.kind(), "non_unit_jobs");
    }

    #[test]
    fn offline_methods_reject_arrival_traces() {
        let err = registry()
            .solve(&SolveRequest::new("GreedyBalance", fig_like()).with_arrivals(vec![0, 0]))
            .unwrap_err();
        assert_eq!(err.kind(), "arrivals_unsupported");
    }

    #[test]
    fn bounds_only_fills_the_best_bound() {
        let outcome = registry()
            .solve(&SolveRequest::new("Bounds", fig_like()))
            .unwrap();
        assert!(outcome.makespan.is_none());
        assert!(outcome.schedule.is_none());
        let best = outcome.lower_bounds.best.expect("best bound computed");
        assert!(best >= outcome.lower_bounds.trivial);
    }

    #[test]
    fn grid_overflow_is_an_error_only_when_scaled_is_demanded() {
        // A denominator of exactly 2^63 makes both the exact-engine grid
        // (2·D) and the scheduling grid ((m+1)·D) overflow u64, while the
        // rational fallback's i128 arithmetic stays comfortably in range.
        let inst = Instance::unit_from_requirements(vec![vec![Ratio::new(1, 1i128 << 63)]]);
        assert!(Prepared::new(&inst).scaled.is_none());
        let reg = registry();

        let err = reg
            .solve(
                &SolveRequest::new("GreedyBalance", inst.clone())
                    .with_engine(EnginePreference::Scaled),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "grid_overflow");

        let auto = reg
            .solve(&SolveRequest::new("GreedyBalance", inst))
            .unwrap();
        assert_eq!(auto.engine, Engine::Rational);
        assert_eq!(auto.fallbacks.len(), 1, "fallback recorded");
    }

    #[test]
    fn all_kinds_enumerates_every_variant_without_duplicates() {
        let samples: Vec<SolveError> = vec![
            SolveError::UnknownMethod { method: "x".into() },
            SolveError::NonUnitJobs { method: "x".into() },
            SolveError::WrongProcessorCount {
                method: "x".into(),
                expected: 2,
                found: 3,
            },
            SolveError::GridOverflow { method: "x".into() },
            SolveError::EngineUnavailable {
                method: "x".into(),
                engine: EnginePreference::Rational,
            },
            SolveError::RoundTooLarge { round: 1, nodes: 2 },
            SolveError::BudgetExhausted {
                method: "x".into(),
                kind: BudgetKind::Steps,
                limit: 1,
            },
            SolveError::Infeasible {
                error: ScheduleError::WrongProcessorCount {
                    step: 0,
                    expected: 1,
                    found: 2,
                },
            },
            SolveError::ArrivalsUnsupported { method: "x".into() },
            SolveError::InvalidArrivals {
                expected: 1,
                found: 2,
            },
            SolveError::DeadlineExceeded {
                reason: CancelReason::DeadlineExceeded,
            },
            SolveError::Internal {
                message: "x".into(),
            },
            SolveError::ResourceMismatch {
                method: "x".into(),
                resources: 2,
            },
            SolveError::ResourceOverflow { method: "x".into() },
        ];
        assert_eq!(samples.len(), SolveError::ALL_KINDS.len());
        let mut seen = std::collections::HashSet::new();
        for err in &samples {
            assert!(
                SolveError::ALL_KINDS.contains(&err.kind()),
                "{} missing from ALL_KINDS",
                err.kind()
            );
            assert!(seen.insert(err.kind()), "duplicate kind {}", err.kind());
        }
    }

    #[test]
    fn cancelled_requests_surface_deadline_exceeded() {
        let reg = registry();
        let inst = fig_like();
        let prepared = Prepared::new(&inst);
        let cancelled = CancelToken::new();
        cancelled.cancel();
        // Exact engines and (via the default entry check) heuristics alike.
        for method in ["OptM", "BruteForce", "GreedyBalance", "OptTwo"] {
            let mut req = SolveRequest::new(method, inst.clone());
            if method == "OptTwo" {
                req.instance = Instance::unit_from_percentages(&[&[60, 40], &[40, 60]]);
            }
            let prep = Prepared::new(&req.instance);
            let err = reg.solve_cancellable(&req, &prep, &cancelled).unwrap_err();
            assert_eq!(err.kind(), "deadline_exceeded", "{method}");
            assert!(err.to_string().contains("cancelled externally"));
        }
        // A zero-millisecond wall budget fires the deadline reason, and the
        // rational core observes it too (no fallback-and-retry).
        for engine in [EnginePreference::Auto, EnginePreference::Rational] {
            let req = SolveRequest::new("OptM", inst.clone())
                .with_engine(engine)
                .with_budget(Budget {
                    max_wall_ms: Some(0),
                    ..Budget::UNLIMITED
                });
            let err = reg
                .solve_cancellable(&req, &prepared, &CancelToken::never())
                .unwrap_err();
            assert_eq!(
                err,
                SolveError::DeadlineExceeded {
                    reason: CancelReason::DeadlineExceeded
                },
                "{engine:?}"
            );
        }
        // A live token with a generous budget reproduces the plain outcome.
        let req = SolveRequest::new("OptM", inst.clone()).with_budget(Budget {
            max_wall_ms: Some(60_000),
            ..Budget::UNLIMITED
        });
        let outcome = reg
            .solve_cancellable(&req, &prepared, &CancelToken::new())
            .unwrap();
        assert_eq!(
            outcome.makespan,
            reg.solve(&SolveRequest::new("OptM", inst))
                .unwrap()
                .makespan
        );
    }

    #[test]
    fn opt_two_honors_deadlines_mid_dp() {
        // Regression: OptTwo used to inherit the default entry-check-only
        // cancellation, so a deadline that fired after the first cell never
        // stopped the `O(n1·n2)` table fill.  Both DP engines now poll a
        // strided gate inside the sweep: on a ~9M-cell table a 1ms deadline
        // passes the entry check but must be caught mid-fill (the rational
        // Ratio-arithmetic sweep alone would otherwise run for seconds).
        let reg = registry();
        let reqs: Vec<i64> = (0..3000).map(|j| 1 + j % 97).collect();
        let chain: Vec<&[i64]> = vec![&reqs, &reqs];
        let inst = Instance::unit_from_percentages(&chain);
        let prepared = Prepared::new(&inst);
        for engine in [EnginePreference::Scaled, EnginePreference::Rational] {
            let req = SolveRequest::new("OptTwo", inst.clone())
                .with_engine(engine)
                .with_budget(Budget {
                    max_wall_ms: Some(1),
                    ..Budget::UNLIMITED
                });
            let err = reg
                .solve_cancellable(&req, &prepared, &CancelToken::new())
                .unwrap_err();
            assert_eq!(err.kind(), "deadline_exceeded", "{engine:?}");
        }
        // A generous deadline reproduces the plain outcome bit for bit.
        let req = SolveRequest::new("OptTwo", inst.clone()).with_budget(Budget {
            max_wall_ms: Some(60_000),
            ..Budget::UNLIMITED
        });
        let outcome = reg
            .solve_cancellable(&req, &prepared, &CancelToken::new())
            .unwrap();
        assert_eq!(
            outcome.makespan,
            reg.solve(&SolveRequest::new("OptTwo", inst))
                .unwrap()
                .makespan
        );
    }

    fn multi_fig_like() -> Instance {
        cr_core::InstanceBuilder::new()
            .processor([Ratio::from_percent(60), Ratio::from_percent(40)])
            .processor([Ratio::from_percent(30), Ratio::from_percent(90)])
            .extra_layer([
                vec![Ratio::from_percent(25), Ratio::from_percent(75)],
                vec![Ratio::from_percent(70), Ratio::from_percent(10)],
            ])
            .build()
    }

    #[test]
    fn every_method_answers_multi_resource_requests() {
        let reg = registry();
        let inst = multi_fig_like();
        let prepared = Prepared::new(&inst);
        for method in POLY_METHODS {
            let outcome = reg
                .solve_prepared(&SolveRequest::new(method, inst.clone()), &prepared)
                .unwrap_or_else(|e| panic!("{method}: {e}"));
            assert!(outcome.schedule.is_none(), "{method}");
            assert!(
                outcome.makespan.unwrap() >= outcome.lower_bounds.trivial,
                "{method}"
            );
        }
        for method in ["OptTwo", "OptM", "BruteForce"] {
            let outcome = reg
                .solve_prepared(&SolveRequest::new(method, inst.clone()), &prepared)
                .unwrap_or_else(|e| panic!("{method}: {e}"));
            assert_eq!(outcome.engine, Engine::Scaled, "{method}");
            assert!(outcome.schedule.is_none(), "{method}");
            assert!(
                outcome.makespan.unwrap() >= outcome.lower_bounds.trivial,
                "{method}"
            );
        }
        let bounds = reg
            .solve_prepared(&SolveRequest::new("Bounds", inst.clone()), &prepared)
            .unwrap();
        assert!(bounds.makespan.is_none());
        assert_eq!(bounds.lower_bounds.best, Some(bounds.lower_bounds.trivial));
    }

    #[test]
    fn multi_resource_exact_engines_agree_across_cores_and_methods() {
        let reg = registry();
        let inst = multi_fig_like();
        let prepared = Prepared::new(&inst);
        let mut values = Vec::new();
        for method in ["OptTwo", "OptM", "BruteForce"] {
            for engine in [
                EnginePreference::Auto,
                EnginePreference::Scaled,
                EnginePreference::Rational,
            ] {
                let outcome = reg
                    .solve_prepared(
                        &SolveRequest::new(method, inst.clone()).with_engine(engine),
                        &prepared,
                    )
                    .unwrap_or_else(|e| panic!("{method}/{engine:?}: {e}"));
                values.push((method, engine, outcome.makespan.unwrap()));
            }
        }
        let first = values[0].2;
        for (method, engine, value) in values {
            assert_eq!(value, first, "{method}/{engine:?} diverged");
        }
    }

    #[test]
    fn zero_extra_layer_reproduces_the_scalar_optimum() {
        // A k = 2 instance whose second layer is all-zero adds no
        // constraints: the exact multi search must reproduce the scalar
        // OPT(m) value bit for bit.
        let base = fig_like();
        let inst = cr_core::InstanceBuilder::new()
            .processor([
                Ratio::from_percent(60),
                Ratio::from_percent(40),
                Ratio::from_percent(80),
            ])
            .processor([
                Ratio::from_percent(30),
                Ratio::from_percent(90),
                Ratio::from_percent(10),
            ])
            .extra_layer([vec![Ratio::ZERO; 3], vec![Ratio::ZERO; 3]])
            .build();
        let scalar = crate::opt_m_makespan(&base);
        let multi = registry()
            .solve(&SolveRequest::new("OptM", inst))
            .unwrap()
            .makespan
            .unwrap();
        assert_eq!(multi, scalar);
    }

    #[test]
    fn multi_resource_schedules_are_a_structured_error() {
        let reg = registry();
        let inst = multi_fig_like();
        for method in ["GreedyBalance", "OptTwo", "OptM", "BruteForce"] {
            let err = reg
                .solve(&SolveRequest::new(method, inst.clone()).with_schedule())
                .unwrap_err();
            assert_eq!(err.kind(), "resource_mismatch", "{method}");
            assert!(err.to_string().contains("single-resource"));
        }
    }

    #[test]
    fn multi_resource_layer_overflow_routes_like_grid_overflow() {
        // A layer requirement with a 2^63 denominator makes the layer grid
        // unrepresentable: Scaled fails with resource_overflow, Auto falls
        // back to the rational stepper and records the fallback.
        let huge = Ratio::new(1, 1i128 << 63);
        let inst = cr_core::InstanceBuilder::new()
            .processor([Ratio::from_percent(50)])
            .processor([Ratio::from_percent(50)])
            .extra_layer([vec![huge], vec![huge]])
            .build();
        let reg = registry();
        for method in ["EqualShare", "OptM"] {
            let err = reg
                .solve(
                    &SolveRequest::new(method, inst.clone()).with_engine(EnginePreference::Scaled),
                )
                .unwrap_err();
            assert_eq!(err.kind(), "resource_overflow", "{method}");
            let auto = reg.solve(&SolveRequest::new(method, inst.clone())).unwrap();
            assert_eq!(auto.engine, Engine::Rational, "{method}");
            assert_eq!(auto.fallbacks.len(), 1, "{method}");
        }
    }

    #[test]
    fn multi_resource_round_budget_still_applies_to_opt_m() {
        // Three two-layer full-requirement jobs: makespan 3, so a 1-round
        // cap fails while a 3-round cap answers exactly.
        let inst = cr_core::InstanceBuilder::new()
            .processor([Ratio::ONE])
            .processor([Ratio::ONE])
            .processor([Ratio::ONE])
            .extra_layer([vec![Ratio::ONE], vec![Ratio::ONE], vec![Ratio::ONE]])
            .build();
        let reg = registry();
        let err = reg
            .solve(
                &SolveRequest::new("OptM", inst.clone()).with_budget(Budget {
                    max_rounds: Some(1),
                    ..Budget::UNLIMITED
                }),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "budget_exhausted");
        let ok = reg
            .solve(&SolveRequest::new("OptM", inst).with_budget(Budget {
                max_rounds: Some(3),
                ..Budget::UNLIMITED
            }))
            .unwrap();
        assert_eq!(ok.makespan, Some(3));
    }

    #[test]
    fn prepared_is_reusable_across_methods() {
        let inst = fig_like();
        let prepared = Prepared::new(&inst);
        assert!(prepared.scaled.is_some());
        assert!(prepared.sched_scaled);
        let reg = registry();
        let a = reg
            .solve_prepared(&SolveRequest::new("OptM", inst.clone()), &prepared)
            .unwrap();
        let b = reg.solve(&SolveRequest::new("OptM", inst)).unwrap();
        assert_eq!(a, b);
    }
}
