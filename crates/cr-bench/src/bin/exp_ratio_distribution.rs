//! E8 — Theorem 7 in practice: the approximation ratio of balanced schedules
//! (GreedyBalance) against the exact optimum on thousands of small random
//! instances, and against the best lower bound on larger ones.  The measured
//! ratios must never exceed 2 − 1/m, and are typically much smaller.
//!
//! The measurement grid comes from the shared builders in `cr_bench::grids`
//! and fans out through the rayon pipeline; only the summary statistics stay
//! local.

#![forbid(unsafe_code)]

use cr_bench::grids::{random_exact_cells, random_large_cells};
use cr_bench::pipeline::{Algorithm, CellResult, Runner};
use cr_instances::RequirementProfile;

fn summarize(label: &str, m: usize, ratios: &[f64]) {
    // An empty group means the label prefixes drifted from grids.rs — fail
    // loudly instead of printing NaN statistics.
    assert!(!ratios.is_empty(), "no results matched group `{label}`");
    let count = ratios.len() as f64;
    let mean = ratios.iter().sum::<f64>() / count;
    let max = ratios.iter().fold(0.0_f64, |a, &b| a.max(b));
    let at_one = ratios.iter().filter(|&&r| (r - 1.0).abs() < 1e-12).count();
    println!(
        "  {label:<34} mean {mean:.4}  max {max:.4}  optimal in {:>4.1}% of cases  (bound 2 − 1/m = {:.4})",
        100.0 * at_one as f64 / count,
        2.0 - 1.0 / m as f64
    );
}

/// Ratios of the results measured under `algorithm` whose instance label
/// starts with `prefix`.
fn ratios_of(results: &[CellResult], algorithm: Algorithm, prefix: &str) -> Vec<f64> {
    results
        .iter()
        .filter(|r| r.algorithm == algorithm.name() && r.instance.starts_with(prefix))
        .map(|r| r.makespan as f64 / r.reference as f64)
        .collect()
}

fn main() {
    println!("E8 / Theorem 7 — approximation-ratio distribution of GreedyBalance\n");

    let runner = Runner::default();
    let profiles = [RequirementProfile::Uniform, RequirementProfile::Heavy];

    // Exact comparison against OptResAssignment2 on small instances — the
    // whole sweep is one parallel grid; summaries group by label prefix.
    println!("against the exact optimum (small instances, 200 reps each):");
    let results = runner.run(&random_exact_cells(200, &profiles));
    for result in &results {
        let ratio = result.makespan as f64 / result.reference as f64;
        let m = result.processors;
        if result.algorithm == Algorithm::GreedyBalance.name() {
            assert!(
                ratio <= 2.0 - 1.0 / m as f64 + 1e-9,
                "Theorem 7 violated on {}",
                result.instance
            );
        } else {
            assert!(
                ratio <= 2.0 + 1e-9,
                "Theorem 3 violated on {}",
                result.instance
            );
        }
    }
    for (m, n) in [(2usize, 4usize), (3, 3), (3, 4), (4, 3)] {
        for profile in profiles {
            if m >= 4 && matches!(profile, RequirementProfile::Heavy) {
                continue;
            }
            let prefix = format!("{profile:?} m={m} n={n} ");
            summarize(
                &format!("GreedyBalance m={m} n={n} {profile:?}"),
                m,
                &ratios_of(&results, Algorithm::GreedyBalance, &prefix),
            );
            summarize(
                &format!("RoundRobin    m={m} n={n} {profile:?}"),
                m,
                &ratios_of(&results, Algorithm::RoundRobin, &prefix),
            );
        }
    }

    // Against the best lower bound on larger instances (the true ratio is at
    // most the reported one).
    println!("\nagainst the best lower bound (larger instances, 50 reps each):");
    let results = runner.run(&random_large_cells(50));
    for (m, n) in [(4usize, 20usize), (8, 20), (16, 40)] {
        let prefix = format!("uniform m={m} n={n} ");
        summarize(
            &format!("GreedyBalance m={m} n={n} uniform"),
            m,
            &ratios_of(&results, Algorithm::GreedyBalance, &prefix),
        );
    }
    println!(
        "\npaper: Theorem 7 — every non-wasting, progressive, balanced schedule is a\n\
         (2 − 1/m)-approximation; Theorem 8 — the bound is tight in the worst case, but the\n\
         table shows typical instances sit far below it."
    );
}
