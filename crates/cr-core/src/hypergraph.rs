//! The scheduling hypergraph of Section 3.2.
//!
//! For a unit-size instance and a schedule `S`, the hypergraph `H_S` has one
//! node per job (weighted with its resource requirement) and one edge per
//! time step, containing the jobs active in that step.  Its connected
//! components carry the structural information used by the lower bounds of
//! Lemmas 5 and 6 and by the (2 − 1/m)-approximation proof.

use crate::instance::Instance;
use crate::job::JobId;
use crate::rational::Ratio;
use crate::schedule::ScheduleTrace;

/// A plain union–find (disjoint set union) over `n` elements with union by
/// rank and path halving.  Small, allocation-free after construction; used to
/// compute connected components of scheduling hypergraphs.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Finds the representative of `x` (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the sets containing `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components
    }
}

/// One connected component `C_k` of a scheduling hypergraph, in left-to-right
/// (time) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// The jobs (nodes) of the component.
    pub nodes: Vec<JobId>,
    /// The time steps whose edges lie inside the component (consecutive by
    /// Observation 2).
    pub steps: Vec<usize>,
    /// The component class `q_k`: the size of its first edge.
    pub class: usize,
}

impl Component {
    /// Number of nodes `|C_k|`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `#_k`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.steps.len()
    }

    /// First time step of the component.
    #[must_use]
    pub fn first_step(&self) -> usize {
        self.steps[0]
    }

    /// Last time step of the component.
    #[must_use]
    pub fn last_step(&self) -> usize {
        // lint: allow(panic_hygiene) — the constructor only builds components with at least one edge
        *self.steps.last().expect("component has at least one edge")
    }
}

/// The scheduling hypergraph `H_S` of a schedule, together with its connected
/// components ordered from left (earliest steps) to right.
#[derive(Debug, Clone)]
pub struct SchedulingGraph {
    /// Node weights: requirement of each job, in processor-major order.
    node_weights: Vec<(JobId, Ratio)>,
    /// Edges: for each time step `t < makespan`, the active jobs.
    edges: Vec<Vec<JobId>>,
    /// Connected components in time order.
    components: Vec<Component>,
}

impl SchedulingGraph {
    /// Builds the scheduling hypergraph from a validated trace.
    ///
    /// The construction follows §3.2: nodes are jobs, the edge of step `t`
    /// contains the active job of every processor that still has unfinished
    /// jobs at the start of step `t`.  Only the first `makespan` steps
    /// contribute edges (later steps are empty).
    #[must_use]
    pub fn build(instance: &Instance, trace: &ScheduleTrace) -> Self {
        let node_weights: Vec<(JobId, Ratio)> = instance
            .iter_jobs()
            .map(|(id, job)| (id, job.requirement))
            .collect();

        // Dense index for union-find.
        let index_of = |id: JobId| -> usize {
            node_weights
                .iter()
                .position(|(nid, _)| *nid == id)
                // lint: allow(panic_hygiene) — edges only name jobs drawn from the instance's own rows
                .expect("job id present in instance")
        };

        let makespan = trace.makespan();
        let mut edges: Vec<Vec<JobId>> = Vec::with_capacity(makespan);
        for t in 0..makespan {
            edges.push(trace.edge(t));
        }

        let mut uf = UnionFind::new(node_weights.len());
        for edge in &edges {
            for window in edge.windows(2) {
                uf.union(index_of(window[0]), index_of(window[1]));
            }
        }

        // A component is identified by the representative of (any of) its
        // nodes; collect edges per representative in time order.
        let mut components: Vec<Component> = Vec::new();
        let mut rep_to_component: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (t, edge) in edges.iter().enumerate() {
            if edge.is_empty() {
                continue;
            }
            let rep = uf.find(index_of(edge[0]));
            let comp_idx = *rep_to_component.entry(rep).or_insert_with(|| {
                components.push(Component {
                    nodes: Vec::new(),
                    steps: Vec::new(),
                    class: edge.len(),
                });
                components.len() - 1
            });
            components[comp_idx].steps.push(t);
            for &job in edge {
                if !components[comp_idx].nodes.contains(&job) {
                    components[comp_idx].nodes.push(job);
                }
            }
        }

        // Components were created in order of their first edge, i.e. already
        // sorted left-to-right.
        SchedulingGraph {
            node_weights,
            edges,
            components,
        }
    }

    /// Number of nodes (jobs).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.node_weights.len()
    }

    /// Number of edges (= makespan of the schedule).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The weight (resource requirement) of a node.
    #[must_use]
    pub fn node_weight(&self, id: JobId) -> Option<Ratio> {
        self.node_weights
            .iter()
            .find(|(nid, _)| *nid == id)
            .map(|(_, w)| *w)
    }

    /// The edge (active-job set) of time step `t`.
    #[must_use]
    pub fn edge(&self, t: usize) -> &[JobId] {
        &self.edges[t]
    }

    /// All edges in time order.
    #[must_use]
    pub fn edges(&self) -> &[Vec<JobId>] {
        &self.edges
    }

    /// The connected components `C_1, …, C_N` in left-to-right order.
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of connected components `N`.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Average number of edges per component (the `#∅` of Theorem 7's proof).
    #[must_use]
    pub fn average_edges_per_component(&self) -> Ratio {
        if self.components.is_empty() {
            return Ratio::ZERO;
        }
        Ratio::new(self.num_edges() as i128, self.components.len() as i128)
    }

    /// Verifies Observation 2: each component's edges form a consecutive
    /// range of time steps.
    #[must_use]
    pub fn components_are_consecutive(&self) -> bool {
        self.components
            .iter()
            .all(|c| c.steps.windows(2).all(|w| w[1] == w[0] + 1))
    }

    /// Verifies Lemma 2 for a non-wasting, progressive and balanced schedule:
    /// `|C_k| ≥ #_k + q_k − 1` for every component except the last, and
    /// `|C_N| ≥ #_N` for the last.
    #[must_use]
    pub fn satisfies_lemma2(&self) -> bool {
        let n = self.components.len();
        self.components.iter().enumerate().all(|(k, c)| {
            if k + 1 < n {
                c.num_nodes() + 1 >= c.num_edges() + c.class
            } else {
                c.num_nodes() >= c.num_edges()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::rational::ratio;
    use crate::schedule::{Schedule, ScheduleBuilder};

    #[test]
    fn union_find_basic() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 3));
        uf.union(1, 3);
        assert!(uf.connected(0, 4));
        assert_eq!(uf.component_count(), 2);
    }

    /// Greedily prioritizing jobs with the larger remaining requirement on the
    /// Figure 1 instance should produce the six edges / three components of
    /// the figure.
    fn fig1_instance() -> Instance {
        Instance::unit_from_percentages(&[&[20, 10, 10, 10], &[50, 55, 90, 55, 10], &[50, 40, 95]])
    }

    /// Builds the schedule of Figure 1a: in each step, serve active jobs in
    /// order of increasing remaining requirement (greedily finish as many
    /// jobs as possible).
    fn fig1_schedule(inst: &Instance) -> Schedule {
        let m = inst.processors();
        let mut b = ScheduleBuilder::new(inst);
        while !b.all_done() {
            let mut order: Vec<usize> = (0..m).filter(|&i| b.is_active(i)).collect();
            order.sort_by_key(|&i| b.remaining_workload(i));
            let mut shares = vec![Ratio::ZERO; m];
            let mut left = Ratio::ONE;
            for i in order {
                let give = b.step_demand(i).min(left);
                shares[i] = give;
                left -= give;
                if left.is_zero() {
                    break;
                }
            }
            b.push_step(shares);
        }
        b.finish()
    }

    #[test]
    fn figure1_graph_structure() {
        let inst = fig1_instance();
        let schedule = fig1_schedule(&inst);
        let trace = schedule.trace(&inst).unwrap();
        assert_eq!(trace.makespan(), 6, "Figure 1 schedule has six time steps");

        let graph = SchedulingGraph::build(&inst, &trace);
        assert_eq!(graph.num_nodes(), 12);
        assert_eq!(graph.num_edges(), 6);
        assert!(graph.components_are_consecutive());
        // Figure 1b shows three components ordered left to right.
        assert_eq!(graph.num_components(), 3);
        let classes: Vec<usize> = graph.components().iter().map(|c| c.class).collect();
        assert_eq!(classes, vec![3, 3, 1]);
        // C1 = {e1, e2} with 5 nodes, C2 = {e3, e4, e5} with 6 nodes,
        // C3 = {e6} with a single node.
        let sizes: Vec<usize> = graph
            .components()
            .iter()
            .map(super::Component::num_nodes)
            .collect();
        assert_eq!(sizes, vec![5, 6, 1]);
        let edge_counts: Vec<usize> = graph
            .components()
            .iter()
            .map(super::Component::num_edges)
            .collect();
        assert_eq!(edge_counts, vec![2, 3, 1]);
        assert!(graph.satisfies_lemma2());
    }

    #[test]
    fn node_weights_match_requirements() {
        let inst = fig1_instance();
        let schedule = fig1_schedule(&inst);
        let trace = schedule.trace(&inst).unwrap();
        let graph = SchedulingGraph::build(&inst, &trace);
        assert_eq!(
            graph.node_weight(crate::job::JobId::new(1, 2)),
            Some(ratio(9, 10))
        );
        assert_eq!(graph.node_weight(crate::job::JobId::new(9, 9)), None);
    }

    #[test]
    fn average_edges_per_component() {
        let inst = fig1_instance();
        let schedule = fig1_schedule(&inst);
        let trace = schedule.trace(&inst).unwrap();
        let graph = SchedulingGraph::build(&inst, &trace);
        assert_eq!(graph.average_edges_per_component(), ratio(2, 1));
    }

    #[test]
    fn single_processor_graph_is_one_path_of_components() {
        let inst = Instance::unit_from_percentages(&[&[50, 50, 50]]);
        let schedule = Schedule::new(vec![
            vec![ratio(1, 2)],
            vec![ratio(1, 2)],
            vec![ratio(1, 2)],
        ]);
        let trace = schedule.trace(&inst).unwrap();
        let graph = SchedulingGraph::build(&inst, &trace);
        // Each job is its own component (edges are singletons).
        assert_eq!(graph.num_components(), 3);
        assert!(graph.components().iter().all(|c| c.class == 1));
        assert!(graph.satisfies_lemma2());
    }
}
