//! Simulation metrics.

use serde::{Deserialize, Serialize};

/// Per-core outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreReport {
    /// Task / core name.
    pub name: String,
    /// Step (1-based count) in which the core's task finished; `0` when the
    /// task was already empty before the first step.
    pub completion_time: usize,
    /// Completion time the task would have achieved with the bus to itself.
    pub ideal_completion_time: usize,
    /// Number of steps in which the core was active but received no bus share.
    pub starved_steps: usize,
}

impl CoreReport {
    /// Slowdown relative to running alone at full bandwidth.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        if self.ideal_completion_time == 0 {
            return 1.0;
        }
        self.completion_time as f64 / self.ideal_completion_time as f64
    }
}

/// Aggregate outcome of a simulation run.
///
/// Consumption and waste are reported **exactly**, as integer units on the
/// workload's grid: one simulated step hands out [`capacity`](Self::capacity)
/// units, [`consumed_units`](Self::consumed_units) of the
/// `capacity · makespan` total were usefully absorbed, and
/// [`wasted_units_per_step`](Self::wasted_units_per_step) is the exact
/// per-step series of units no core could use (the raw data behind the
/// utilization figures).  The float [`bus_utilization`](Self::bus_utilization)
/// is derived from these integers once, at the end of the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy that produced the run.
    pub policy: String,
    /// Number of cores.
    pub cores: usize,
    /// Makespan: the step count after which every task is finished.
    pub makespan: usize,
    /// Units the bus hands out per step (the workload's unit-grid
    /// denominator `D`).
    pub capacity: u64,
    /// Exact number of units usefully consumed over the whole run.
    pub consumed_units: u64,
    /// Exact number of units wasted in each step (`capacity` minus the
    /// useful consumption), one entry per simulated step.
    pub wasted_units_per_step: Vec<u64>,
    /// Average fraction of the bus that was usefully consumed per step
    /// (up to the makespan); derived from the exact unit counts.
    pub bus_utilization: f64,
    /// Lower bound on the optimal makespan (total bus demand and longest
    /// task), for normalized comparisons.
    pub lower_bound: usize,
    /// Per-core details.
    pub per_core: Vec<CoreReport>,
}

impl SimReport {
    /// Total units wasted over the whole run (exact).
    #[must_use]
    pub fn wasted_units_total(&self) -> u64 {
        self.wasted_units_per_step.iter().sum()
    }

    /// Fraction of the bus wasted in `step`, for plotting the waste series.
    #[must_use]
    pub fn wasted_fraction(&self, step: usize) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.wasted_units_per_step[step] as f64 / self.capacity as f64
    }

    /// Makespan normalized by the lower bound.
    #[must_use]
    pub fn normalized_makespan(&self) -> f64 {
        if self.lower_bound == 0 {
            return 1.0;
        }
        self.makespan as f64 / self.lower_bound as f64
    }

    /// Mean slowdown over all cores.
    #[must_use]
    pub fn average_slowdown(&self) -> f64 {
        if self.per_core.is_empty() {
            return 1.0;
        }
        self.per_core.iter().map(CoreReport::slowdown).sum::<f64>() / self.per_core.len() as f64
    }

    /// Maximum slowdown over all cores (tail latency of the workload).
    #[must_use]
    pub fn max_slowdown(&self) -> f64 {
        self.per_core
            .iter()
            .map(CoreReport::slowdown)
            .fold(1.0_f64, f64::max)
    }

    /// One-line summary for experiment logs.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{:<18} makespan {:>5}  (lower bound {:>5}, ratio {:.3})  bus {:>5.1}%  avg slowdown {:.2}  max slowdown {:.2}",
            self.policy,
            self.makespan,
            self.lower_bound,
            self.normalized_makespan(),
            self.bus_utilization * 100.0,
            self.average_slowdown(),
            self.max_slowdown(),
        )
    }
}

/// Aggregate outcome of a multi-resource (`k ≥ 2`) simulation run — the
/// layered twin of [`SimReport`].
///
/// All consumption and waste figures are exact integer units on the
/// respective resource's grid: resource `r` hands out
/// `capacities[r]` units per step, `consumed_units[r]` of the
/// `capacities[r] · makespan` total were usefully absorbed, and
/// `wasted_units_per_step[r]` is that resource's exact per-step waste
/// series.  Quantities of different resources live on different grids and
/// must not be summed across layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSimReport {
    /// Policy that produced the run.
    pub policy: String,
    /// Number of cores.
    pub cores: usize,
    /// Number of shared resources `k`.
    pub resources: usize,
    /// Makespan: the step count after which every task is finished.
    pub makespan: usize,
    /// Units each resource hands out per step (that layer's unit-grid
    /// denominator), one entry per resource.
    pub capacities: Vec<u64>,
    /// Exact units usefully consumed over the whole run, per resource.
    pub consumed_units: Vec<u64>,
    /// Exact units wasted in each step, resource-major: entry `r` is a
    /// series of `makespan` values, each `capacities[r]` minus the useful
    /// consumption on resource `r` in that step.
    pub wasted_units_per_step: Vec<Vec<u64>>,
    /// Average fraction of each resource that was usefully consumed per
    /// step; derived from the exact unit counts.
    pub utilization: Vec<f64>,
    /// Per-core details.
    pub per_core: Vec<CoreReport>,
}

impl MultiSimReport {
    /// Total units wasted on `resource` over the whole run (exact).
    #[must_use]
    pub fn wasted_units_total(&self, resource: usize) -> u64 {
        self.wasted_units_per_step[resource].iter().sum()
    }

    /// The most-utilized resource — the binding layer of the run.  Ties go
    /// to the lowest index; an empty run reports resource 0.
    #[must_use]
    pub fn bottleneck_resource(&self) -> usize {
        self.utilization
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map_or(0, |(r, _)| r)
    }

    /// Mean slowdown over all cores.
    #[must_use]
    pub fn average_slowdown(&self) -> f64 {
        if self.per_core.is_empty() {
            return 1.0;
        }
        self.per_core.iter().map(CoreReport::slowdown).sum::<f64>() / self.per_core.len() as f64
    }

    /// One-line summary for experiment logs.
    #[must_use]
    pub fn summary(&self) -> String {
        let per_resource: Vec<String> = self
            .utilization
            .iter()
            .enumerate()
            .map(|(r, u)| format!("r{r} {:.1}%", u * 100.0))
            .collect();
        format!(
            "{:<18} makespan {:>5}  ({} resources: {})  avg slowdown {:.2}",
            self.policy,
            self.makespan,
            self.resources,
            per_resource.join(", "),
            self.average_slowdown(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            policy: "GreedyBalance".into(),
            cores: 2,
            makespan: 10,
            capacity: 10,
            consumed_units: 80,
            wasted_units_per_step: vec![2; 10],
            bus_utilization: 0.8,
            lower_bound: 8,
            per_core: vec![
                CoreReport {
                    name: "core0".into(),
                    completion_time: 10,
                    ideal_completion_time: 5,
                    starved_steps: 2,
                },
                CoreReport {
                    name: "core1".into(),
                    completion_time: 8,
                    ideal_completion_time: 8,
                    starved_steps: 0,
                },
            ],
        }
    }

    #[test]
    fn slowdowns() {
        let r = report();
        assert!((r.per_core[0].slowdown() - 2.0).abs() < 1e-12);
        assert!((r.per_core[1].slowdown() - 1.0).abs() < 1e-12);
        assert!((r.average_slowdown() - 1.5).abs() < 1e-12);
        assert!((r.max_slowdown() - 2.0).abs() < 1e-12);
        assert!((r.normalized_makespan() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn summary_contains_key_numbers() {
        let s = report().summary();
        assert!(s.contains("GreedyBalance"));
        assert!(s.contains("10"));
        assert!(s.contains("1.25"));
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let r = SimReport {
            policy: "x".into(),
            cores: 0,
            makespan: 0,
            capacity: 0,
            consumed_units: 0,
            wasted_units_per_step: vec![],
            bus_utilization: 0.0,
            lower_bound: 0,
            per_core: vec![],
        };
        assert_eq!(r.normalized_makespan(), 1.0);
        assert_eq!(r.average_slowdown(), 1.0);
        assert_eq!(r.max_slowdown(), 1.0);
        assert_eq!(r.wasted_units_total(), 0);
    }

    #[test]
    fn exact_waste_accounting() {
        let r = report();
        assert_eq!(r.wasted_units_total(), 20);
        assert!((r.wasted_fraction(0) - 0.2).abs() < 1e-12);
        // consumed + wasted == capacity · makespan, exactly.
        assert_eq!(
            r.consumed_units + r.wasted_units_total(),
            r.capacity * r.makespan as u64
        );
    }

    #[test]
    fn serde_roundtrip() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    fn multi_report() -> MultiSimReport {
        MultiSimReport {
            policy: "GreedyBalance".into(),
            cores: 2,
            resources: 2,
            makespan: 4,
            capacities: vec![10, 4],
            consumed_units: vec![30, 16],
            wasted_units_per_step: vec![vec![2, 2, 3, 3], vec![0, 0, 0, 0]],
            utilization: vec![0.75, 1.0],
            per_core: report().per_core,
        }
    }

    #[test]
    fn multi_report_accounting_and_bottleneck() {
        let r = multi_report();
        assert_eq!(r.wasted_units_total(0), 10);
        assert_eq!(r.wasted_units_total(1), 0);
        // consumed + wasted == capacity · makespan on every layer.
        for res in 0..r.resources {
            assert_eq!(
                r.consumed_units[res] + r.wasted_units_total(res),
                r.capacities[res] * r.makespan as u64
            );
        }
        assert_eq!(r.bottleneck_resource(), 1);
        assert!((r.average_slowdown() - 1.5).abs() < 1e-12);
        let s = r.summary();
        assert!(s.contains("r1 100.0%"));
        assert!(s.contains("2 resources"));
    }

    #[test]
    fn multi_serde_roundtrip() {
        let r = multi_report();
        let json = serde_json::to_string(&r).unwrap();
        let back: MultiSimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
