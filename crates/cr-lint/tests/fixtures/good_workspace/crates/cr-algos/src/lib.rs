//! Fixture crate: a clean `cr-algos` stand-in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scaled_engine;
pub mod solver;
