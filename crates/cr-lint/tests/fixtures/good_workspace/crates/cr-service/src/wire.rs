//! Fixture wire vocabulary.

/// Kinds the fixture transport emits on its own authority.
pub const WIRE_ERROR_KINDS: [&str; 1] = ["bad_request"];
