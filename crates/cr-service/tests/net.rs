//! Socket serving tier contracts: multi-client byte-identity, order
//! stability, quota/overload shedding as structured errors, schedule
//! streaming, the empty-flush regression and graceful drain.

use cr_service::net::{Server, ServerConfig, ServerHandle};
use cr_service::wire::{self, StreamPolicy};
use cr_service::SolverService;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// The committed CI smoke batch (12 mixed requests: one over budget, one
/// multi-resource, one misshapen-layer bad_request).
fn smoke_lines() -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/smoke_batch.jsonl");
    std::fs::read_to_string(path)
        .expect("read smoke batch")
        .lines()
        .map(str::to_string)
        .collect()
}

fn spawn_server(config: ServerConfig) -> ServerHandle {
    let service = Arc::new(SolverService::with_standard_registry());
    Server::spawn(service, "127.0.0.1:0", config).expect("bind ephemeral port")
}

/// A test client: connects, sends `lines` plus a flushing blank line, reads
/// `expect` response lines.
fn drive(addr: std::net::SocketAddr, lines: &[String], expect: usize) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    for line in lines {
        writeln!(stream, "{line}").expect("send request line");
    }
    writeln!(stream).expect("send flush line");
    stream.flush().expect("flush requests");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(expect);
    for _ in 0..expect {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response line");
        responses.push(line.trim_end().to_string());
    }
    responses
}

/// The single-client reference rendering: exactly what the stdin mode (and
/// a lone socket client) would answer.
fn reference_responses(lines: &[String]) -> Vec<String> {
    let service = SolverService::with_standard_registry();
    wire::process_batch(&service, lines, 0)
}

#[test]
fn concurrent_clients_get_byte_identical_order_stable_responses() {
    const CLIENTS: usize = 6;
    let handle = spawn_server(ServerConfig::default());
    let addr = handle.addr();
    let lines = smoke_lines();
    let reference = reference_responses(&lines);

    let workers: Vec<std::thread::JoinHandle<Vec<String>>> = (0..CLIENTS)
        .map(|_| {
            let lines = lines.clone();
            std::thread::spawn(move || drive(addr, &lines, 12))
        })
        .collect();
    for worker in workers {
        let responses = worker.join().expect("client thread");
        assert_eq!(
            responses, reference,
            "a concurrent client's responses diverged from the single-client reference"
        );
        for (i, response) in responses.iter().enumerate() {
            assert!(
                response.starts_with(&format!("{{\"id\":{i},")),
                "order instability at slot {i}: {response}"
            );
        }
    }
    let stats = handle.stats();
    assert_eq!(stats.connections, CLIENTS as u64);
    assert_eq!(stats.served, (CLIENTS * 12) as u64);
    assert_eq!(stats.inflight, 0);
    handle.shutdown();
    handle.join();
}

#[test]
fn quota_rejections_are_structured_and_order_stable() {
    let handle = spawn_server(ServerConfig {
        per_client_quota: 4,
        ..ServerConfig::default()
    });
    let lines = smoke_lines();
    let reference = reference_responses(&lines);
    let responses = drive(handle.addr(), &lines, 12);
    // The first four slots are admitted and byte-identical to the
    // unthrottled reference; the rest answer quota_exceeded in order.
    assert_eq!(responses[..4], reference[..4]);
    for (i, response) in responses.iter().enumerate().skip(4) {
        assert!(
            response.contains("\"kind\":\"quota_exceeded\""),
            "slot {i} must be a structured quota rejection: {response}"
        );
        assert!(
            response.starts_with(&format!("{{\"id\":{i},")),
            "{response}"
        );
    }
    let stats = handle.stats();
    assert_eq!(stats.served, 4);
    assert_eq!(stats.quota_rejected, 8);
    handle.shutdown();
    handle.join();
}

#[test]
fn exhausted_global_cap_sheds_the_whole_flush_as_overloaded() {
    let handle = spawn_server(ServerConfig {
        max_inflight: 0,
        ..ServerConfig::default()
    });
    let lines = smoke_lines();
    let responses = drive(handle.addr(), &lines, 12);
    for (i, response) in responses.iter().enumerate() {
        assert!(
            response.contains("\"kind\":\"overloaded\""),
            "slot {i} must be shed: {response}"
        );
        assert!(
            response.starts_with(&format!("{{\"id\":{i},")),
            "{response}"
        );
    }
    assert_eq!(handle.stats().overloaded, 12);
    handle.shutdown();
    handle.join();
}

#[test]
fn empty_flush_answers_bad_request_and_ids_keep_counting() {
    let handle = spawn_server(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    // A lone blank line: previously swallowed silently, now a structured
    // bad_request row.
    writeln!(stream).expect("send empty flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(line.contains("\"kind\":\"bad_request\""), "{line}");
    assert!(line.contains("empty batch"), "{line}");
    assert!(line.starts_with("{\"id\":0,"), "{line}");
    // The empty flush consumed id 0; a real request now answers as id 1.
    writeln!(stream, r#"{{"method":"GreedyBalance","rows":[[50,50]]}}"#).expect("send");
    writeln!(stream).expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("read response");
    assert!(line.starts_with("{\"id\":1,"), "{line}");
    assert!(line.contains("\"makespan\":2"), "{line}");
    handle.shutdown();
    handle.join();
}

#[test]
fn long_schedules_stream_and_reassemble_byte_identically() {
    let handle = spawn_server(ServerConfig {
        stream: StreamPolicy {
            threshold_steps: 3,
            chunk_steps: 2,
        },
        ..ServerConfig::default()
    });
    // Three chained 100% jobs: a 3-step schedule, over the 3-step threshold
    // → head + 2 chunks + end.
    let request = vec![
        r#"{"method":"EqualShare","rows":[[100],[100],[100]],"want_schedule":true}"#.to_string(),
    ];
    let frames = drive(handle.addr(), &request, 4);
    assert!(frames[0].contains("\"frame\":\"head\""), "{}", frames[0]);
    assert!(frames[0].contains("\"schedule\":null"), "{}", frames[0]);
    assert!(
        frames[0].contains("\"stream\":{\"steps\":3,\"chunks\":2,\"chunk_steps\":2}"),
        "{}",
        frames[0]
    );
    assert!(frames[1].contains("\"frame\":\"chunk\""), "{}", frames[1]);
    assert!(frames[2].contains("\"seq\":1"), "{}", frames[2]);
    assert!(frames[3].contains("\"frame\":\"end\""), "{}", frames[3]);

    let assembled = wire::assemble_streamed(&frames).expect("reassemble stream");
    let reference = reference_responses(&request);
    assert_eq!(assembled, reference[0], "streamed ≠ buffered response");
    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_control_frame_drains_gracefully() {
    let handle = spawn_server(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    // Pending (un-flushed) work plus a shutdown control frame: the pending
    // batch completes before the drain acknowledgment.
    writeln!(stream, r#"{{"method":"OptTwo","rows":[[60,40],[40,60]]}}"#).expect("send");
    writeln!(stream, r#"{{"control":"stats"}}"#).expect("send stats");
    writeln!(stream, r#"{{"control":"shutdown"}}"#).expect("send shutdown");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read stats");
    assert!(line.contains("\"control\":\"stats\""), "{line}");
    line.clear();
    reader.read_line(&mut line).expect("read pending response");
    assert!(line.contains("\"makespan\":2"), "{line}");
    line.clear();
    reader.read_line(&mut line).expect("read drain ack");
    assert!(
        line.contains("\"control\":\"shutdown\"") && line.contains("\"draining\":true"),
        "{line}"
    );
    // Clean close after the ack.
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("read EOF"), 0);
    assert!(handle.is_draining());
    handle.join();
}

#[test]
fn draining_server_answers_new_flushes_with_draining_errors() {
    let handle = spawn_server(ServerConfig::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    // Ensure the connection is up before the drain starts.
    writeln!(stream, r#"{{"method":"GreedyBalance","rows":[[50]]}}"#).expect("send");
    writeln!(stream).expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(line.contains("\"makespan\":1"), "{line}");

    handle.shutdown();
    // An explicit flush after the drain started answers with structured
    // draining rows (the connection is not dropped mid-protocol).
    writeln!(stream, r#"{{"method":"GreedyBalance","rows":[[50]]}}"#).expect("send");
    writeln!(stream).expect("flush");
    line.clear();
    reader.read_line(&mut line).expect("read draining row");
    assert!(line.contains("\"kind\":\"draining\""), "{line}");
    drop(stream);
    handle.join();
}

/// A 6-processor brute-force request that runs for minutes uninterrupted
/// (measured >60 s in release): only a fired deadline can answer it fast.
fn pathological_line(deadline_ms: u64) -> String {
    format!(
        concat!(
            r#"{{"method":"BruteForce","deadline_ms":{},"rows":"#,
            r#"[[10,20,30,40,50],[15,25,35,45,55],[12,22,32,42,52],"#,
            r#"[13,23,33,43,53],[14,24,34,44,54],[16,26,36,46,56]]}}"#
        ),
        deadline_ms
    )
}

#[test]
fn deadline_exceeded_answers_fast_with_byte_identical_siblings() {
    let handle = spawn_server(ServerConfig::default());
    let greedy = r#"{"method":"GreedyBalance","rows":[[60,40],[40,60]]}"#.to_string();
    let lines = vec![greedy.clone(), pathological_line(100)];
    let start = std::time::Instant::now();
    let responses = drive(handle.addr(), &lines, 2);
    let elapsed = start.elapsed();
    // The sibling is byte-identical to its single-request reference.
    assert_eq!(responses[0], reference_responses(&[greedy])[0]);
    assert!(
        responses[1].contains("\"kind\":\"deadline_exceeded\""),
        "{}",
        responses[1]
    );
    // 100 ms deadline + one 50 ms check interval, with debug-build slack;
    // without cancellation this solve runs for minutes.
    assert!(
        elapsed < Duration::from_millis(1500),
        "deadline enforcement took {elapsed:?}"
    );
    let stats = handle.stats();
    assert_eq!(stats.inflight, 0, "leaked in-flight slots");
    handle.shutdown();
    handle.join();
}

#[test]
fn server_default_deadline_bounds_requests_without_their_own() {
    let handle = spawn_server(ServerConfig {
        default_deadline_ms: Some(100),
        ..ServerConfig::default()
    });
    // No per-request deadline: the server's own default must stop it.
    let line = pathological_line(3_600_000);
    let start = std::time::Instant::now();
    let responses = drive(handle.addr(), &[line], 1);
    assert!(
        responses[0].contains("\"kind\":\"deadline_exceeded\""),
        "{}",
        responses[0]
    );
    assert!(
        start.elapsed() < Duration::from_millis(1500),
        "server default deadline took {:?}",
        start.elapsed()
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn injected_panic_yields_one_internal_error_row_with_intact_siblings() {
    let service = Arc::new(SolverService::with_standard_registry_and_debug());
    let handle =
        Server::spawn(service, "127.0.0.1:0", ServerConfig::default()).expect("bind ephemeral");
    let greedy = r#"{"method":"GreedyBalance","rows":[[60,40],[40,60]]}"#.to_string();
    let boom = r#"{"method":"debug:panic","rows":[[50]]}"#.to_string();
    let bounds = r#"{"method":"Bounds","rows":[[20,10],[50,55]]}"#.to_string();
    let responses = drive(handle.addr(), &[greedy.clone(), boom, bounds.clone()], 3);
    assert_eq!(responses[0], reference_responses(&[greedy])[0]);
    assert!(
        responses[1].contains("\"kind\":\"internal_error\""),
        "{}",
        responses[1]
    );
    assert!(
        responses[1].contains("deliberate panic"),
        "{}",
        responses[1]
    );
    {
        let reference = reference_responses(&[bounds]);
        // The reference has id 0; the sibling answered as id 2.
        assert_eq!(
            responses[2].replacen("{\"id\":2,", "{\"id\":0,", 1),
            reference[0]
        );
    }
    // The server must still answer the full golden batch byte-identically
    // after containing a panic.
    let lines = smoke_lines();
    let after = drive(handle.addr(), &lines, 12);
    assert_eq!(after, reference_responses(&lines));
    let stats = handle.stats();
    assert_eq!(stats.inflight, 0, "leaked in-flight slots");
    handle.shutdown();
    handle.join();
}

#[test]
fn mid_line_disconnects_leak_nothing_and_server_keeps_serving() {
    let handle = spawn_server(ServerConfig::default());
    // Abandon a connection mid-line (bytes sent, no newline), another one
    // mid-batch (lines sent, no flush), and one right after a flush.
    {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .write_all(br#"{"method":"GreedyBal"#)
            .expect("send partial line");
        stream.flush().expect("flush bytes");
    }
    {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        writeln!(stream, r#"{{"method":"GreedyBalance","rows":[[50]]}}"#).expect("send line");
    }
    {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        writeln!(stream, r#"{{"method":"GreedyBalance","rows":[[50]]}}"#).expect("send line");
        writeln!(stream).expect("send flush");
        // Dropped without reading the response.
    }
    // Give the workers a moment to observe the disconnects.
    std::thread::sleep(Duration::from_millis(300));
    let lines = smoke_lines();
    let responses = drive(handle.addr(), &lines, 12);
    assert_eq!(responses, reference_responses(&lines));
    let stats = handle.stats();
    assert_eq!(stats.inflight, 0, "leaked in-flight slots");
    handle.shutdown();
    handle.join();
}

#[test]
fn idle_connections_get_a_structured_notice_then_close() {
    let handle = spawn_server(ServerConfig {
        idle_timeout_ms: Some(200),
        ..ServerConfig::default()
    });
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let start = std::time::Instant::now();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read idle notice");
    assert!(line.contains("\"kind\":\"idle_timeout\""), "{line}");
    assert!(
        start.elapsed() >= Duration::from_millis(200),
        "closed before the idle timeout"
    );
    line.clear();
    assert_eq!(reader.read_line(&mut line).expect("read EOF"), 0);
    let stats = handle.stats();
    assert_eq!(stats.idle_closed, 1);
    handle.shutdown();
    handle.join();
}

#[test]
fn assemble_streamed_rejects_truncated_streams() {
    let handle = spawn_server(ServerConfig {
        stream: StreamPolicy {
            threshold_steps: 3,
            chunk_steps: 2,
        },
        ..ServerConfig::default()
    });
    let request = vec![
        r#"{"method":"EqualShare","rows":[[100],[100],[100]],"want_schedule":true}"#.to_string(),
    ];
    let frames = drive(handle.addr(), &request, 4);
    // A disconnect mid-stream leaves the client without the end frame (or
    // worse, mid-chunk): reassembly must fail loudly, not fabricate a
    // partial schedule.
    let missing_end = &frames[..3];
    assert!(
        wire::assemble_streamed(missing_end).is_err(),
        "accepted a stream with no end frame"
    );
    let missing_chunk = vec![frames[0].clone(), frames[1].clone(), frames[3].clone()];
    assert!(
        wire::assemble_streamed(&missing_chunk).is_err(),
        "accepted a stream with a missing chunk"
    );
    handle.shutdown();
    handle.join();
}
