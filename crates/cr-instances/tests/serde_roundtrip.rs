//! Round-trip coverage for `cr_instances::serde_io`: instance → JSON →
//! instance equality, including the degenerate 0% and 100% resource shares
//! the experiment harness can emit, plus file-level and string-level paths.

use cr_core::{Instance, Job, Ratio, Schedule};
use cr_instances::serde_io::{
    read_instance, read_json, schedule_from_json, schedule_to_json, write_instance, write_json,
    NamedInstance,
};
use cr_instances::{random_sized_instance, random_unit_instance, MeasurementRecord, RandomConfig};
use std::fs;
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cr-serde-roundtrip-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn named(name: &str, instance: Instance) -> NamedInstance {
    NamedInstance {
        name: name.to_string(),
        description: format!("round-trip coverage instance `{name}`"),
        instance,
    }
}

#[test]
fn degenerate_zero_percent_shares_roundtrip() {
    // A 0% requirement is legal (the job needs no resource at all) and must
    // survive serialization exactly — `0/1` in lowest terms.
    let instance = Instance::unit_from_percentages(&[&[0, 50], &[0, 0, 100]]);
    let json = serde_json::to_string(&instance).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(back, instance);
    let zero = back.processor_jobs(0)[0].requirement;
    assert!(zero.is_zero());
    assert_eq!(zero.denom(), 1);
}

#[test]
fn degenerate_full_shares_roundtrip() {
    // 100% requirements (the resource bottleneck regime) and whole-resource
    // schedule rows.
    let instance = Instance::unit_from_percentages(&[&[100, 100], &[100]]);
    let json = serde_json::to_string(&instance).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(back, instance);

    let schedule = Schedule::new(vec![
        vec![Ratio::ONE, Ratio::ZERO],
        vec![Ratio::ONE, Ratio::ZERO],
        vec![Ratio::ZERO, Ratio::ONE],
    ]);
    let text = schedule_to_json(&schedule);
    let back = schedule_from_json(&text).unwrap();
    assert_eq!(back, schedule);
}

#[test]
fn mixed_extreme_instance_roundtrips_through_file() {
    let dir = tempdir("mixed");
    let path = dir.join("extreme.json");
    let instance = Instance::unit_from_percentages(&[&[0, 100, 0], &[100, 0], &[50]]);
    let original = named("extremes", instance);
    write_instance(&path, &original).unwrap();
    let back = read_instance(&path).unwrap();
    assert_eq!(back, original);
    fs::remove_dir_all(dir).ok();
}

#[test]
fn random_instances_roundtrip_exactly() {
    // Unit-size and arbitrary-size random instances keep every rational
    // component exact through JSON (i128-exact numbers in the writer).
    for seed in 0..10u64 {
        let unit = random_unit_instance(&RandomConfig::uniform(4, 6), seed);
        let json = serde_json::to_string(&unit).unwrap();
        assert_eq!(serde_json::from_str::<Instance>(&json).unwrap(), unit);

        let sized = random_sized_instance(&RandomConfig::uniform(3, 5), 7, seed);
        let json = serde_json::to_string(&sized).unwrap();
        assert_eq!(serde_json::from_str::<Instance>(&json).unwrap(), sized);
    }
}

#[test]
fn volumes_and_awkward_rationals_roundtrip() {
    // Non-unit volumes and rationals with large coprime components.
    let instance = Instance::new(vec![
        vec![Job::new(Ratio::new(1, 3), Ratio::new(7, 2))],
        vec![Job::new(
            Ratio::new(999_983, 1_000_003),
            Ratio::from_integer(12),
        )],
    ])
    .unwrap();
    let json = serde_json::to_string_pretty(&instance).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(back, instance);
}

#[test]
fn named_instance_with_unicode_metadata_roundtrips() {
    let dir = tempdir("unicode");
    let path = dir.join("unicode.json");
    let mut original = named("fig1", Instance::unit_from_percentages(&[&[60, 40]]));
    original.description = "ratio ≤ 2 − 1/m — \"quoted\", backslash \\, newline\n".to_string();
    write_instance(&path, &original).unwrap();
    let back = read_instance(&path).unwrap();
    assert_eq!(back, original);
    fs::remove_dir_all(dir).ok();
}

#[test]
fn measurement_record_roundtrips_via_generic_helpers() {
    let dir = tempdir("record");
    let path = dir.join("record.json");
    let record = MeasurementRecord {
        experiment: "E8".to_string(),
        instance: "uniform m=4 n=20 rep=3".to_string(),
        algorithm: "GreedyBalance".to_string(),
        processors: 4,
        max_chain: 20,
        makespan: 23,
        lower_bound: 21,
    };
    write_json(&path, &record).unwrap();
    let back: MeasurementRecord = read_json(&path).unwrap();
    assert_eq!(back, record);
    fs::remove_dir_all(dir).ok();
}

#[test]
fn empty_processor_rows_roundtrip() {
    // Processors with no jobs are legal instances and must survive I/O.
    let instance = Instance::new(vec![vec![Job::unit(Ratio::new(1, 2))], vec![]]).unwrap();
    let json = serde_json::to_string(&instance).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(back, instance);
    assert_eq!(back.jobs_on(1), 0);
}
