//! Quickstart: build a CRSharing instance, run every algorithm on it, and
//! inspect the resulting schedules, structural properties and lower bounds.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use crsharing::algos::solver::POLY_METHODS;
use crsharing::algos::{OptM, Scheduler, SolveRequest};
use crsharing::core::properties::PropertyReport;
use crsharing::core::{bounds, Instance, SchedulingGraph};
use crsharing::service::SolverService;
use crsharing::viz::{render_components, render_instance, render_schedule};

fn main() {
    // The running example of the paper (Figure 1): three processors sharing
    // one resource, requirements given in percent.
    let instance =
        Instance::unit_from_percentages(&[&[20, 10, 10, 10], &[50, 55, 90, 55, 10], &[50, 40, 95]]);

    println!("{}", render_instance(&instance));
    println!(
        "lower bounds: workload ⌈{}⌉ = {}, chain n = {}\n",
        instance.total_workload(),
        bounds::workload_bound_steps(&instance),
        bounds::chain_bound(&instance)
    );

    // The exact algorithm of Section 7 gives the optimal makespan.
    let optimal = OptM::new();
    let opt_schedule = optimal.schedule(&instance);
    let opt_makespan = opt_schedule.makespan(&instance).expect("feasible");
    println!("optimal makespan (OptResAssignment2): {opt_makespan}\n");

    // Every polynomial-time algorithm of the paper plus the baselines,
    // dispatched through the unified solver service (the same surface the
    // cr-serve batch binary exposes).
    let service = SolverService::with_standard_registry();
    let requests: Vec<SolveRequest> = POLY_METHODS
        .iter()
        .map(|&method| SolveRequest::new(method, instance.clone()).with_schedule())
        .collect();
    for (method, result) in POLY_METHODS.iter().zip(service.solve_batch(&requests)) {
        let outcome = result.expect("polynomial methods are total");
        let schedule = outcome.schedule.expect("schedule requested");
        let trace = schedule.trace(&instance).expect("feasible schedule");
        let report = PropertyReport::analyze(&trace);
        println!(
            "{:<26} makespan {:>2}  ratio vs OPT {:.3}   [{report}]",
            method,
            trace.makespan(),
            trace.makespan() as f64 / opt_makespan as f64,
        );
    }

    // A closer look at the schedule GreedyBalance produces: its Gantt chart
    // and the connected components of its scheduling hypergraph.
    let greedy = crsharing::algos::GreedyBalance::new();
    let schedule = greedy.schedule(&instance);
    let trace = schedule.trace(&instance).expect("feasible schedule");
    println!("\nGreedyBalance schedule:");
    println!("{}", render_schedule(&instance, &trace));
    let graph = SchedulingGraph::build(&instance, &trace);
    println!("{}", render_components(&graph));
    println!(
        "Lemma 5 bound from this schedule: {}   Lemma 6 bound: {}",
        bounds::component_bound(&graph),
        bounds::class_bound_steps(&graph, instance.processors())
    );
}
