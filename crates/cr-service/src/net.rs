//! The network front door: a hand-rolled TCP serving tier on top of
//! [`SolverService`].
//!
//! `cr-serve --listen ADDR` (and [`Server::spawn`] embedded in tests and the
//! load generator) accepts many concurrent JSONL clients and multiplexes
//! them onto **one** warm service — every connection shares the same
//! per-instance conversion cache and the same deterministic rayon pool, so
//! a schedule computed for client A warms the cache for client B.
//!
//! The transport is deliberately simple and dependency-free: a blocking
//! `std::net::TcpListener` acceptor thread plus one OS thread per
//! connection (bounded by [`ServerConfig::max_clients`]), which on a
//! many-core box behaves like the classic thread-per-core design for the
//! connection counts this repository targets.  Every connection speaks the
//! exact protocol of the stdin mode — request lines accumulate, a blank
//! line flushes the batch — so `nc` against a socket and a pipe into
//! `cr-serve` are interchangeable (see `docs/WIRE.md`).
//!
//! # Admission control and load shedding
//!
//! The budgets carried by [`SolveRequest`](cr_algos::solver::SolveRequest)
//! bound the *work of one request*; this layer bounds the *number of
//! requests in flight*:
//!
//! * **Per-client quota** ([`ServerConfig::per_client_quota`]): of one
//!   flushed batch, only the first `quota` requests are admitted; the rest
//!   answer with structured `quota_exceeded` errors — the connection stays
//!   open and the response stream stays order-stable.
//! * **Global cap** ([`ServerConfig::max_inflight`]): a flush whose
//!   admitted requests would push the server past its total in-flight cap
//!   is shed *whole* — every slot answers `overloaded` immediately, no
//!   queueing, so latency of admitted traffic stays bounded.
//! * **Connection cap** ([`ServerConfig::max_clients`]): connections past
//!   the cap receive a single `overloaded` line and are closed.
//! * **Graceful drain**: a `{"control":"shutdown"}` line (or
//!   [`ServerHandle::shutdown`]) stops the acceptor; batches already
//!   flushed complete and respond, every connection finishes its pending
//!   partial batch, later flushes answer `draining` for a short grace
//!   window (~2 s) so in-flight clients hear the rejection instead of a
//!   closed socket, and [`ServerHandle::join`] returns once the last
//!   worker exits.
//!
//! # Deadlines and cancellation
//!
//! Every flush solves under a per-flush [`CancelToken`]: the server's
//! [`ServerConfig::default_deadline_ms`] bounds it, each request's own
//! `deadline_ms` tightens its child, and a per-connection watcher cancels
//! it when the socket dies hard (reset) mid-solve — over-deadline requests
//! answer structured `deadline_exceeded` rows within about one check
//! interval (50 ms) while their in-deadline siblings answer normally.
//! Connections idle past [`ServerConfig::idle_timeout_ms`] receive one
//! `idle_timeout` notice line and are closed.
//!
//! # Failure domains
//!
//! A panicking solver is caught per request ([`SolverService`]'s panic
//! boundary) and answers an `internal_error` row; a panicking connection
//! worker closes exactly its own connection (counted in `worker_panics`)
//! and frees its client slot; the acceptor survives per-connection setup
//! panics.  The server process itself never exits on request input.
//!
//! # Streaming
//!
//! Responses whose schedules reach [`StreamPolicy::threshold_steps`] are
//! streamed as `head`/`chunk`/`end` frames instead of one giant line (see
//! [`wire::render_item_streamed`] and `docs/WIRE.md`); clients reassemble
//! with [`wire::assemble_streamed`].

use crate::wire::{self, BatchItem, StreamPolicy};
use crate::SolverService;
use cr_core::CancelToken;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum requests of one flushed batch admitted per client;
    /// requests past the cut answer `quota_exceeded`.
    pub per_client_quota: usize,
    /// Total requests the server will solve concurrently across all
    /// clients; a flush that would exceed it is answered `overloaded`.
    pub max_inflight: usize,
    /// Concurrent connections accepted; excess connections get one
    /// `overloaded` line and are closed.
    pub max_clients: usize,
    /// When and how large schedules stream (see [`StreamPolicy`]).
    pub stream: StreamPolicy,
    /// Wall-clock deadline applied to every flush, in milliseconds
    /// (`None` = no server-side deadline).  A client's own `deadline_ms`
    /// tightens but never loosens this: over-deadline requests answer
    /// `deadline_exceeded` in their slots.
    pub default_deadline_ms: Option<u64>,
    /// Connections idle (no bytes received) this long are sent one
    /// structured `idle_timeout` notice line and closed (`None` = never).
    pub idle_timeout_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            per_client_quota: 256,
            max_inflight: 1024,
            max_clients: 64,
            stream: StreamPolicy::DEFAULT,
            default_deadline_ms: None,
            idle_timeout_ms: Some(60_000),
        }
    }
}

/// Liveness counters of a running server (all monotonically increasing
/// except `inflight`), exposed through the `{"control":"stats"}` frame and
/// [`ServerHandle::stats`].
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (including ones later shed).
    pub connections: AtomicU64,
    /// Requests solved to completion (ok or structured solve error).
    pub served: AtomicU64,
    /// Requests rejected with `quota_exceeded`.
    pub quota_rejected: AtomicU64,
    /// Requests shed with `overloaded` (including shed connections).
    pub overloaded: AtomicU64,
    /// Requests currently being solved.
    pub inflight: AtomicUsize,
    /// Connection workers that panicked (the panic closed one connection;
    /// the server kept serving).
    pub worker_panics: AtomicU64,
    /// Connections closed with an `idle_timeout` notice.
    pub idle_closed: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Requests solved to completion.
    pub served: u64,
    /// Requests rejected with `quota_exceeded`.
    pub quota_rejected: u64,
    /// Requests shed with `overloaded`.
    pub overloaded: u64,
    /// Requests currently being solved.
    pub inflight: usize,
    /// Connection workers that panicked (connection closed, server alive).
    pub worker_panics: u64,
    /// Connections closed with an `idle_timeout` notice.
    pub idle_closed: u64,
    /// Times the service's warm cache recovered a poisoned lock (see
    /// [`SolverService::cache_rebuilds`]).
    pub cache_rebuilds: u64,
    /// Conversion-cache lookups served warm (see
    /// [`SolverService::cache_counters`]; zero under `obs-off`).
    pub cache_hits: u64,
    /// Conversion-cache lookups that ran a fresh conversion (zero under
    /// `obs-off`).
    pub cache_misses: u64,
    /// Conversion-cache entries dropped by the wholesale eviction at the
    /// cache cap (zero under `obs-off`).
    pub cache_evictions: u64,
}

/// Every counter of the `{"control":"stats"}` frame, in frame order.
/// `docs/WIRE.md` documents each name; the `wire_docs` test keeps the two
/// in sync.
pub const STATS_FIELDS: [&str; 11] = [
    "connections",
    "served",
    "quota_rejected",
    "overloaded",
    "inflight",
    "worker_panics",
    "idle_closed",
    "cache_rebuilds",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
];

impl StatsSnapshot {
    /// The frame values in [`STATS_FIELDS`] order.
    #[must_use]
    pub fn field_values(&self) -> [u64; 11] {
        [
            self.connections,
            self.served,
            self.quota_rejected,
            self.overloaded,
            u64::try_from(self.inflight).unwrap_or(u64::MAX),
            self.worker_panics,
            self.idle_closed,
            self.cache_rebuilds,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
        ]
    }
}

impl ServerStats {
    fn snapshot(&self, cache_rebuilds: u64, cache_counters: (u64, u64, u64)) -> StatsSnapshot {
        let (cache_hits, cache_misses, cache_evictions) = cache_counters;
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            cache_rebuilds,
            cache_hits,
            cache_misses,
            cache_evictions,
        }
    }

    /// Tries to reserve `n` in-flight slots; all-or-nothing so one flush is
    /// never half-admitted.
    fn try_acquire(&self, n: usize, cap: usize) -> bool {
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current + n > cap {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + n,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    fn release(&self, n: usize) {
        self.inflight.fetch_sub(n, Ordering::AcqRel);
    }
}

/// Pre-created serving-tier counters mirroring [`ServerStats`] into the
/// service's observability registry (resolved once at spawn, so the
/// serving paths never touch the registry's name table; see
/// `docs/OBSERVABILITY.md`).
struct NetObs {
    connections: cr_obs::Counter,
    served: cr_obs::Counter,
    quota_rejected: cr_obs::Counter,
    overloaded: cr_obs::Counter,
    worker_panics: cr_obs::Counter,
    idle_closed: cr_obs::Counter,
}

impl NetObs {
    fn new(registry: &cr_obs::Registry) -> NetObs {
        NetObs {
            connections: registry.counter(cr_obs::names::NET_CONNECTIONS),
            served: registry.counter(cr_obs::names::NET_SERVED),
            quota_rejected: registry.counter(cr_obs::names::NET_QUOTA_REJECTED),
            overloaded: registry.counter(cr_obs::names::NET_OVERLOADED),
            worker_panics: registry.counter(cr_obs::names::NET_WORKER_PANICS),
            idle_closed: registry.counter(cr_obs::names::NET_IDLE_CLOSED),
        }
    }
}

/// Shared state of a running server.
struct Shared {
    service: Arc<SolverService>,
    config: ServerConfig,
    draining: AtomicBool,
    stats: ServerStats,
    obs: NetObs,
    workers: Mutex<Vec<JoinHandle<()>>>,
    active_clients: AtomicUsize,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        self.stats
            .snapshot(self.service.cache_rebuilds(), self.service.cache_counters())
    }
}

/// A running socket server.  Dropping the handle does **not** stop the
/// server; call [`ServerHandle::shutdown`] + [`ServerHandle::join`] (or let
/// a client send `{"control":"shutdown"}`).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

/// Namespace for [`Server::spawn`] (the server runs entirely on background
/// threads; there is no long-lived `Server` value).
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `service` on background threads.
    ///
    /// # Errors
    ///
    /// Any I/O error from binding the listener.
    pub fn spawn(
        service: Arc<SolverService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Non-blocking accept polled against the drain flag: portable
        // (no epoll/kqueue binding in a vendored-shim build) and the 10 ms
        // poll is invisible next to solve times.
        listener.set_nonblocking(true)?;
        let obs = NetObs::new(service.obs_registry());
        let shared = Arc::new(Shared {
            service,
            config,
            draining: AtomicBool::new(false),
            stats: ServerStats::default(),
            obs,
            workers: Mutex::new(Vec::new()),
            active_clients: AtomicUsize::new(0),
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("cr-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &acceptor_shared))
            // lint: allow(panic_hygiene) — thread spawn only fails on OS resource exhaustion; a server that cannot accept must die loudly
            .expect("spawn acceptor thread");
        Ok(ServerHandle {
            addr: local,
            shared,
            acceptor: Some(acceptor),
        })
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time serving counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Whether a drain has been requested (by this handle or a client's
    /// shutdown control frame).
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Requests a graceful drain: stop accepting, let in-flight batches
    /// respond, answer later flushes with `draining`.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    /// Blocks until the acceptor and every connection worker have exited
    /// (drain must have been requested, or this waits for all clients to
    /// hang up on their own).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            // lint: allow(panic_hygiene) — re-raising an acceptor panic is deliberate: the accept loop must not die silently
            acceptor.join().expect("acceptor thread panicked");
        }
        // Workers register themselves before the acceptor exits, so after
        // the acceptor is gone this list is complete.  Worker panics are
        // caught and counted inside the worker itself, so a failed join
        // here (only possible for a panic outside that boundary) must not
        // take the whole process down with it.
        let workers = std::mem::take(
            &mut *self
                .shared
                .workers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for worker in workers {
            let _ = worker.join();
        }
    }
}

/// Accepts connections until drain, spawning one worker thread each.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // A panic anywhere in this connection's setup costs exactly
                // that connection; the acceptor keeps accepting.
                let result = catch_unwind(AssertUnwindSafe(|| admit_connection(stream, shared)));
                if result.is_err() {
                    shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                    shared.obs.worker_panics.inc();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Admits one accepted connection: shed past the client cap, otherwise
/// spawn its worker thread behind a panic boundary (a panicking worker
/// closes its own connection and bumps `worker_panics`; the server and its
/// client-slot accounting survive).
fn admit_connection(stream: TcpStream, shared: &Arc<Shared>) {
    shared.stats.connections.fetch_add(1, Ordering::Relaxed);
    shared.obs.connections.inc();
    if shared.active_clients.load(Ordering::Acquire) >= shared.config.max_clients {
        shed_connection(stream, shared);
        return;
    }
    shared.active_clients.fetch_add(1, Ordering::AcqRel);
    let worker_shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name("cr-serve-conn".to_string())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                serve_connection(stream, &worker_shared);
            }));
            if result.is_err() {
                worker_shared
                    .stats
                    .worker_panics
                    .fetch_add(1, Ordering::Relaxed);
                worker_shared.obs.worker_panics.inc();
            }
            // The slot is freed on every exit path, panic included.
            worker_shared.active_clients.fetch_sub(1, Ordering::AcqRel);
        })
        // lint: allow(panic_hygiene) — thread spawn only fails on OS resource exhaustion; without a worker the connection cannot be served
        .expect("spawn connection worker");
    shared
        .workers
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(handle);
}

/// Answers a connection past the client cap with one `overloaded` line.
fn shed_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    shared.stats.overloaded.fetch_add(1, Ordering::Relaxed);
    shared.obs.overloaded.inc();
    let line = wire::render_item(&BatchItem::rejected(
        0,
        "overloaded",
        format!(
            "server at its connection cap of {}",
            shared.config.max_clients
        ),
    ));
    let _ = writeln!(stream, "{line}");
    let _ = stream.shutdown(Shutdown::Both);
}

/// Read-timeout polls a draining connection survives before it is closed
/// (40 × the 50 ms read timeout ≈ 2 s): long enough that a client flushing
/// concurrently with the drain gets a structured `draining` answer instead
/// of a closed socket, short enough that [`ServerHandle::join`] stays
/// bounded even when an idle client never hangs up.
const DRAIN_GRACE_POLLS: u32 = 40;

/// How often the disconnect watcher polls its socket while a flush solves.
const DISCONNECT_POLL_MS: u64 = 50;

/// The cancellation bridge between one connection's reader and its
/// disconnect watcher: while a flush is solving, its parent token sits in
/// `flush`; the watcher cancels it when the socket dies hard.
#[derive(Default)]
struct FlushWatch {
    flush: Mutex<Option<CancelToken>>,
    done: AtomicBool,
}

impl FlushWatch {
    fn set(&self, token: Option<CancelToken>) {
        *self
            .flush
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = token;
    }

    fn cancel_active(&self) {
        if let Some(token) = self
            .flush
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
        {
            token.cancel();
        }
    }
}

/// Polls `monitor` while the connection lives, cancelling the in-flight
/// flush (if any) when the socket errors hard (reset / aborted).  A clean
/// FIN is *not* a cancellation: a client may half-close after its last
/// request and still expect its answers.
fn watch_disconnect(monitor: &TcpStream, watch: &FlushWatch) {
    let mut buf = [0u8; 1];
    while !watch.done.load(Ordering::Acquire) {
        match monitor.peek(&mut buf) {
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                watch.cancel_active();
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(DISCONNECT_POLL_MS));
    }
}

/// The per-connection worker: the stdin serve loop, plus admission control,
/// streaming, deadlines, idle timeout and drain handling.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // A short read timeout turns the blocking read loop into a poll against
    // the drain flag without busy-waiting.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let monitor = stream.try_clone().ok();
    let reader = BufReader::new(stream);
    let watch = FlushWatch::default();
    std::thread::scope(|scope| {
        if let Some(monitor) = &monitor {
            scope.spawn(|| watch_disconnect(monitor, &watch));
        }
        connection_loop(reader, writer, shared, &watch);
        watch.done.store(true, Ordering::Release);
    });
}

/// The read-accumulate-flush loop of one connection.
fn connection_loop(
    mut reader: BufReader<TcpStream>,
    mut writer: TcpStream,
    shared: &Arc<Shared>,
    watch: &FlushWatch,
) {
    let mut batch: Vec<String> = Vec::new();
    let mut next_id: u64 = 0;
    let mut line = String::new();
    let mut drain_polls: u32 = 0;
    let idle_timeout = shared.config.idle_timeout_ms.map(Duration::from_millis);
    let mut last_activity = Instant::now();
    let mut seen_len = 0usize;
    loop {
        // NB: `line` is cleared only after a complete line is handled — a
        // read timeout can strike mid-line, and the partial bytes already
        // pulled from the socket must survive the retry.
        match reader.read_line(&mut line) {
            Ok(0) => {
                // EOF: answer whatever the client left unflushed, then close.
                if !batch.is_empty() {
                    let _ = flush_batch(shared, &mut batch, &mut next_id, &mut writer, watch);
                }
                return;
            }
            Ok(_) => {
                last_activity = Instant::now();
                seen_len = 0;
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    // Explicit flush; an empty batch is a protocol error and
                    // answers with a structured bad_request row (it used to
                    // be swallowed silently).
                    if batch.is_empty() {
                        let response = wire::empty_flush_line(next_id);
                        next_id += 1;
                        if writeln!(writer, "{response}")
                            .and_then(|()| writer.flush())
                            .is_err()
                        {
                            return;
                        }
                    } else if flush_batch(shared, &mut batch, &mut next_id, &mut writer, watch)
                        .is_err()
                    {
                        return;
                    }
                } else if let Some(op) = parse_control(trimmed) {
                    if handle_control(&op, shared, &mut batch, &mut next_id, &mut writer, watch)
                        .is_err()
                    {
                        return;
                    }
                    if op == "shutdown" {
                        return;
                    }
                } else {
                    batch.push(trimmed.to_string());
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // A timeout can strike mid-line; bytes dribbled into the
                // partial line still count as activity (a slow sender is
                // not an idle one).
                if line.len() > seen_len {
                    seen_len = line.len();
                    last_activity = Instant::now();
                }
                if shared.draining.load(Ordering::Acquire) {
                    // Graceful drain: complete the pending partial batch
                    // (it was already accepted), then keep answering for a
                    // grace window — flushes racing the drain get their
                    // structured `draining` rows — before closing.
                    if !batch.is_empty() {
                        let _ = flush_batch_during_drain(
                            shared,
                            &mut batch,
                            &mut next_id,
                            &mut writer,
                            watch,
                        );
                    }
                    drain_polls += 1;
                    if drain_polls >= DRAIN_GRACE_POLLS {
                        return;
                    }
                } else if idle_timeout.is_some_and(|t| last_activity.elapsed() >= t) {
                    // Structured notice, then close: the client learns why
                    // the socket went away instead of seeing a bare FIN.
                    shared.stats.idle_closed.fetch_add(1, Ordering::Relaxed);
                    shared.obs.idle_closed.inc();
                    let notice = wire::render_item(&BatchItem::rejected(
                        next_id,
                        "idle_timeout",
                        format!(
                            "connection idle past the server's idle timeout of {} ms",
                            shared.config.idle_timeout_ms.unwrap_or_default()
                        ),
                    ));
                    let _ = writeln!(writer, "{notice}").and_then(|()| writer.flush());
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Recognizes a `{"control": "..."}` frame (an object whose only meaning is
/// the control op; anything else is a request line).
fn parse_control(line: &str) -> Option<String> {
    let value: serde::Value = serde_json::from_str(line).ok()?;
    match value.get("control") {
        Some(serde::Value::String(op)) => Some(op.clone()),
        _ => None,
    }
}

/// Renders a registry snapshot as the JSONL body of the
/// `{"control":"metrics"}` frame: one line per metric (counters, gauges,
/// histograms), then one line per span path, each section in ascending
/// name order — byte-stable for identical registry state, which is the
/// golden contract of `tests/obs_smoke.rs`.
#[must_use]
pub fn metrics_lines(snapshot: &cr_obs::Snapshot) -> Vec<String> {
    let mut lines = Vec::with_capacity(snapshot.metrics.len() + snapshot.spans.len());
    for metric in &snapshot.metrics {
        let name = &metric.name;
        lines.push(match &metric.value {
            cr_obs::MetricValue::Counter(v) => {
                format!(r#"{{"metric":"{name}","type":"counter","value":{v}}}"#)
            }
            cr_obs::MetricValue::Gauge(v) => {
                format!(r#"{{"metric":"{name}","type":"gauge","value":{v}}}"#)
            }
            cr_obs::MetricValue::Histogram(h) => {
                let join = |vals: &[u64]| {
                    vals.iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!(
                    r#"{{"metric":"{name}","type":"histogram","count":{},"sum":{},"max":{},"bounds":[{}],"counts":[{}]}}"#,
                    h.count,
                    h.sum,
                    h.max,
                    join(&h.bounds),
                    join(&h.counts)
                )
            }
        });
    }
    for span in &snapshot.spans {
        lines.push(format!(
            r#"{{"span":"{}","count":{},"total_ns":{}}}"#,
            span.path, span.count, span.total_ns
        ));
    }
    lines
}

/// Handles a control frame: `shutdown` flushes pending work, acknowledges
/// and starts the drain; `stats` reports the serving counters; `metrics`
/// dumps the observability registry as JSONL.
fn handle_control(
    op: &str,
    shared: &Arc<Shared>,
    batch: &mut Vec<String>,
    next_id: &mut u64,
    writer: &mut impl Write,
    watch: &FlushWatch,
) -> io::Result<()> {
    match op {
        "shutdown" => {
            if !batch.is_empty() {
                flush_batch(shared, batch, next_id, writer, watch)?;
            }
            shared.draining.store(true, Ordering::Release);
            writeln!(writer, r#"{{"control":"shutdown","draining":true}}"#)?;
            writer.flush()
        }
        "stats" => {
            let s = shared.snapshot();
            let mut frame = String::from(r#"{"control":"stats""#);
            for (name, value) in STATS_FIELDS.iter().zip(s.field_values()) {
                frame.push_str(&format!(r#","{name}":{value}"#));
            }
            frame.push('}');
            writeln!(writer, "{frame}")?;
            writer.flush()
        }
        "metrics" => {
            let snapshot = shared.service.obs_registry().snapshot();
            let lines = metrics_lines(&snapshot);
            writeln!(
                writer,
                r#"{{"control":"metrics","metrics":{},"spans":{}}}"#,
                snapshot.metrics.len(),
                snapshot.spans.len()
            )?;
            for line in lines {
                writeln!(writer, "{line}")?;
            }
            writer.flush()
        }
        other => {
            writeln!(
                writer,
                r#"{{"control":{},"error":"unknown control op"}}"#,
                serde_json::to_string(&serde::Value::String(other.to_string()))
                    // lint: allow(panic_hygiene) — serializing a String into an in-memory String cannot fail
                    .expect("string serialization is infallible")
            )?;
            writer.flush()
        }
    }
}

/// Admits, solves and answers one flushed batch (the order-stable heart of
/// the serving tier).
fn flush_batch(
    shared: &Arc<Shared>,
    batch: &mut Vec<String>,
    next_id: &mut u64,
    writer: &mut impl Write,
    watch: &FlushWatch,
) -> io::Result<()> {
    write_items(shared, batch, next_id, writer, false, watch)
}

/// [`flush_batch`] for the partial batch completed during a graceful drain:
/// quota and load shedding still apply, but the drain flag itself does not
/// reject the already-accepted work.
fn flush_batch_during_drain(
    shared: &Arc<Shared>,
    batch: &mut Vec<String>,
    next_id: &mut u64,
    writer: &mut impl Write,
    watch: &FlushWatch,
) -> io::Result<()> {
    write_items(shared, batch, next_id, writer, true, watch)
}

fn write_items(
    shared: &Arc<Shared>,
    batch: &mut Vec<String>,
    next_id: &mut u64,
    writer: &mut impl Write,
    during_drain: bool,
    watch: &FlushWatch,
) -> io::Result<()> {
    let lines = std::mem::take(batch);
    let first_id = *next_id;
    *next_id += lines.len() as u64;
    let items = admit_and_solve(shared, &lines, first_id, during_drain, watch);
    for item in &items {
        for line in wire::render_item_streamed(item, shared.config.stream) {
            writeln!(writer, "{line}")?;
        }
    }
    writer.flush()
}

/// The admission pipeline of one flush: drain check, per-client quota cut,
/// global in-flight reservation, then the shared parse + solve path under
/// a per-flush [`CancelToken`] (bounded by the server's default deadline,
/// cancelled by the disconnect watcher if the socket dies hard).
fn admit_and_solve(
    shared: &Arc<Shared>,
    lines: &[String],
    first_id: u64,
    during_drain: bool,
    watch: &FlushWatch,
) -> Vec<BatchItem> {
    let stats = &shared.stats;
    if !during_drain && shared.draining.load(Ordering::Acquire) {
        return (0..lines.len() as u64)
            .map(|i| {
                BatchItem::rejected(
                    first_id + i,
                    "draining",
                    "server is draining for shutdown; no new requests accepted",
                )
            })
            .collect();
    }
    let quota = shared.config.per_client_quota;
    let admitted = lines.len().min(quota);
    if !stats.try_acquire(admitted, shared.config.max_inflight) {
        stats
            .overloaded
            .fetch_add(lines.len() as u64, Ordering::Relaxed);
        shared.obs.overloaded.add(lines.len() as u64);
        return (0..lines.len() as u64)
            .map(|i| {
                BatchItem::rejected(
                    first_id + i,
                    "overloaded",
                    format!(
                        "server over its in-flight cap of {}; retry later",
                        shared.config.max_inflight
                    ),
                )
            })
            .collect();
    }
    // Parent token for the whole flush: an explicitly cancellable root
    // (so the disconnect watcher can stop it) tightened by the server's
    // default deadline when one is configured.  Each request further
    // tightens its child with its own `deadline_ms`.
    let parent = match shared.config.default_deadline_ms {
        Some(ms) => CancelToken::after_ms(ms),
        None => CancelToken::new(),
    };
    watch.set(Some(parent.clone()));
    let mut items =
        // lint: allow(panic_hygiene) — `admitted` was computed as a prefix length of `lines` by the quota check
        wire::solve_batch_items_cancellable(&shared.service, &lines[..admitted], first_id, &parent);
    watch.set(None);
    stats.release(admitted);
    stats.served.fetch_add(admitted as u64, Ordering::Relaxed);
    shared.obs.served.add(admitted as u64);
    for (i, _) in lines.iter().enumerate().skip(admitted) {
        stats.quota_rejected.fetch_add(1, Ordering::Relaxed);
        shared.obs.quota_rejected.inc();
        items.push(BatchItem::rejected(
            first_id + i as u64,
            "quota_exceeded",
            format!("request {i} of this flush exceeds the per-client in-flight quota of {quota}"),
        ));
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_acquire_is_all_or_nothing() {
        let stats = ServerStats::default();
        assert!(stats.try_acquire(3, 4));
        assert!(!stats.try_acquire(2, 4));
        assert!(stats.try_acquire(1, 4));
        stats.release(4);
        assert_eq!(stats.snapshot(0, (0, 0, 0)).inflight, 0);
    }

    #[test]
    fn control_frames_are_recognized() {
        assert_eq!(
            parse_control(r#"{"control":"stats"}"#).as_deref(),
            Some("stats")
        );
        assert_eq!(parse_control(r#"{"method":"OptM","rows":[[50]]}"#), None);
        assert_eq!(parse_control("not json"), None);
    }
}
