//! Multi-resource stepping: the `k`-resource generalization of the scaled
//! scheduling layer.
//!
//! The paper's model shares **one** continuous resource; real many-core
//! traffic contends on several at once (memory bandwidth, bus, cache
//! slices).  An [`Instance`] may carry extra resource layers (see
//! [`Instance::extra_layers`]); this module provides the forward-simulation
//! machinery for such instances:
//!
//! * [`StepUnit`] — the shared arithmetic surface of the two exact
//!   representations: `u64` units on a per-resource LCM grid (the fast
//!   production path) and [`Ratio`] (the exact rational reference path).
//! * [`MultiStepper`] — the `k`-resource twin of
//!   [`ScaledScheduleBuilder`](crate::scaled::ScaledScheduleBuilder): per
//!   step, every resource `r` hands out its own capacity `D_r`, and a job
//!   advances on each resource independently under the decoupled workload
//!   model below.
//!
//! # The decoupled per-resource workload model
//!
//! Job `(i, j)` has the requirement vector `(r⁰, …, r^{k−1})` and one
//! volume `p`.  On every resource `r` with `r^r > 0` the job must absorb
//! the layer workload `r^r · p`, at most `r^r` per time step; it completes
//! once **every** positive layer has been delivered in full.  Because each
//! positive layer needs at least `⌈p⌉` steps on its own, completion takes
//! at least `⌈p⌉` steps, exactly as in the scalar model.  A job whose
//! entire requirement vector is zero occupies `⌈p⌉` steps for free, again
//! mirroring the scalar convention.  For `k = 1` the model *is* the scalar
//! model (the single layer's workload and per-step cap coincide with the
//! scalar ones); the scalar code paths remain the production fast path and
//! are not routed through this module.

use crate::instance::Instance;
use crate::job::JobId;
use crate::rational::Ratio;

/// Least common multiple fold step used by the per-layer grids.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The arithmetic a per-resource quantity must support: exact comparison,
/// overflow-checked addition and (contract-guarded) subtraction.
///
/// Implemented by `u64` (units on a per-resource LCM grid) and [`Ratio`]
/// (exact rational arithmetic with per-resource capacity `1`).  The generic
/// engines in `cr-algos` and the stepper below are written once against
/// this trait so the scaled and rational paths share every line of search
/// and scheduling logic — which is what makes their cross-check meaningful.
pub trait StepUnit: Copy + Ord + std::fmt::Debug {
    /// The additive identity.
    const ZERO: Self;
    /// Overflow-checked addition.
    fn checked_add(self, other: Self) -> Option<Self>;
    /// Subtraction; callers guarantee `other ≤ self`.
    fn sub(self, other: Self) -> Self;
}

impl StepUnit for u64 {
    const ZERO: Self = 0;
    fn checked_add(self, other: Self) -> Option<Self> {
        u64::checked_add(self, other)
    }
    fn sub(self, other: Self) -> Self {
        self - other
    }
}

impl StepUnit for Ratio {
    const ZERO: Self = Ratio::ZERO;
    fn checked_add(self, other: Self) -> Option<Self> {
        Ratio::checked_add(self, other)
    }
    fn sub(self, other: Self) -> Self {
        self - other
    }
}

/// Forward-simulating multi-resource schedule stepper — the `k`-resource
/// twin of [`ScaledScheduleBuilder`](crate::scaled::ScaledScheduleBuilder),
/// generic over the representation (`u64` units or exact [`Ratio`]s).
///
/// Every resource `r` lives on its own grid: a full time step hands out
/// exactly [`capacity(r)`](Self::capacity) units of resource `r`.  The
/// stepper tracks, per processor, the active job's remaining workload on
/// every layer and advances it by the consumed units (`min(share, step
/// demand)`) per layer.
///
/// # Examples
///
/// ```
/// use cr_core::multi::MultiStepper;
/// use cr_core::{ratio, InstanceBuilder, Ratio};
///
/// let inst = InstanceBuilder::new()
///     .processor([ratio(1, 2)])
///     .processor([ratio(1, 2)])
///     .extra_layer([vec![ratio(1, 1)], vec![Ratio::ZERO]])
///     .build();
/// let mut stepper = MultiStepper::try_new_scaled(&inst).unwrap();
/// assert_eq!(stepper.resources(), 2);
/// // Both processors can run on resource 0, but processor 0 saturates
/// // resource 1 on its own.
/// let d0 = stepper.capacity(0);
/// let d1 = stepper.capacity(1);
/// stepper.push_step(&[vec![d0 / 2, d1], vec![d0 / 2, 0]]);
/// assert!(!stepper.is_active(0) && !stepper.is_active(1));
/// ```
#[derive(Debug, Clone)]
pub struct MultiStepper<V> {
    /// Number of resources `k`.
    resources: usize,
    /// Per-resource capacities, length `k`.
    caps: Vec<V>,
    /// Row start offsets into the per-job arrays; length `processors + 1`.
    offsets: Vec<u32>,
    /// Per-step requirement caps, `total_jobs × k`, job-major.
    reqs: Vec<V>,
    /// Initial layer workloads `r^r · p`, `total_jobs × k`, job-major.
    costs: Vec<V>,
    /// Remaining step count `⌈p⌉` for jobs whose whole requirement vector
    /// is zero; `0` for every other job.
    free_steps: Vec<u64>,
    /// Index of each processor's next unfinished job within its row.
    next_job: Vec<usize>,
    /// Remaining layer workloads of each processor's frontier job,
    /// `processors × k`.
    frontier: Vec<V>,
    /// Remaining free steps of each processor's frontier job.
    frontier_free: Vec<u64>,
    /// Number of steps applied so far.
    steps: usize,
}

impl MultiStepper<u64> {
    /// Builds the scaled stepper: every resource on its own unit grid `D_r`
    /// (the LCM of the layer's requirement and positive-layer workload
    /// denominators, with `(m + 1) · D_r` headroom so an unchecked sum of
    /// `m` shares plus a carry fits `u64`).  Returns `None` when any
    /// layer's grid overflows; callers fall back to the exact rational
    /// stepper.
    #[must_use]
    pub fn try_new_scaled(instance: &Instance) -> Option<Self> {
        let m = instance.processors() as u64;
        let k = instance.resources();
        let mut caps = Vec::with_capacity(k);
        for r in 0..k {
            let mut capacity: u64 = 1;
            let mut fold = |den: i128| -> Option<()> {
                let den = u64::try_from(den).ok()?;
                let g = gcd(capacity, den);
                capacity = capacity.checked_mul(den / g)?;
                capacity.checked_mul(m + 1)?;
                Some(())
            };
            for (id, job) in instance.iter_jobs() {
                let req = instance.requirement_on(r, id);
                fold(req.denom())?;
                if req.is_positive() {
                    let workload = req.checked_mul(job.volume)?;
                    fold(workload.denom())?;
                }
            }
            caps.push(capacity);
        }
        Self::build(instance, &caps, |req, volume, cap| {
            let num = u64::try_from(req.numer()).ok()?;
            let den = u64::try_from(req.denom()).ok()?;
            let req_units = num * (cap / den);
            let workload = req.checked_mul(volume)?;
            let num = u64::try_from(workload.numer()).ok()?;
            let den = u64::try_from(workload.denom()).ok()?;
            Some((req_units, num.checked_mul(cap / den)?))
        })
    }
}

impl MultiStepper<Ratio> {
    /// Builds the exact rational stepper: every resource has capacity `1`
    /// and all quantities are exact [`Ratio`]s.  This is the reference
    /// implementation the scaled path is cross-checked against; it never
    /// fails to construct.
    #[must_use]
    pub fn new_rational(instance: &Instance) -> Self {
        let caps = vec![Ratio::ONE; instance.resources()];
        Self::build(instance, &caps, |req, volume, _| Some((req, req * volume)))
            .expect("rational stepper construction is infallible") // lint: allow(panic_hygiene) — the closure never returns None
    }
}

impl<V: StepUnit> MultiStepper<V> {
    /// Shared constructor: `convert(req, volume, cap)` produces the
    /// per-step cap and layer workload of one job on one resource.
    fn build(
        instance: &Instance,
        caps: &[V],
        mut convert: impl FnMut(Ratio, Ratio, V) -> Option<(V, V)>,
    ) -> Option<Self> {
        let m = instance.processors();
        let k = instance.resources();
        let total = instance.total_jobs();
        let mut offsets = Vec::with_capacity(m + 1);
        let mut reqs = Vec::with_capacity(total * k);
        let mut costs = Vec::with_capacity(total * k);
        let mut free_steps = Vec::with_capacity(total);
        offsets.push(0u32);
        for i in 0..m {
            for (j, job) in instance.processor_jobs(i).iter().enumerate() {
                let id = JobId::new(i, j);
                let mut any_positive = false;
                for (r, &cap) in caps.iter().enumerate() {
                    let req = instance.requirement_on(r, id);
                    any_positive |= req.is_positive();
                    let (req_v, cost_v) = convert(req, job.volume, cap)?;
                    reqs.push(req_v);
                    costs.push(cost_v);
                }
                free_steps.push(if any_positive {
                    0
                } else {
                    u64::try_from(job.volume.ceil()).ok()?
                });
            }
            offsets.push(u32::try_from(free_steps.len()).ok()?);
        }
        let mut stepper = MultiStepper {
            resources: k,
            caps: caps.to_vec(),
            offsets,
            reqs,
            costs,
            free_steps,
            next_job: vec![0; m],
            frontier: vec![V::ZERO; m * k],
            frontier_free: vec![0; m],
            steps: 0,
        };
        for i in 0..m {
            stepper.load_frontier(i);
        }
        Some(stepper)
    }

    /// (Re)loads processor `i`'s frontier arrays from its next job.
    fn load_frontier(&mut self, processor: usize) {
        let k = self.resources;
        if let Some(slot) = self.job_slot(processor) {
            self.frontier[processor * k..(processor + 1) * k]
                .copy_from_slice(&self.costs[slot * k..(slot + 1) * k]);
            self.frontier_free[processor] = self.free_steps[slot];
        } else {
            self.frontier[processor * k..(processor + 1) * k].fill(V::ZERO);
            self.frontier_free[processor] = 0;
        }
    }

    fn job_slot(&self, processor: usize) -> Option<usize> {
        let slot = self.offsets[processor] as usize + self.next_job[processor];
        (slot < self.offsets[processor + 1] as usize).then_some(slot)
    }

    /// Number of shared resources `k`.
    #[must_use]
    pub fn resources(&self) -> usize {
        self.resources
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Capacity of resource `resource`: the units one time step hands out.
    #[must_use]
    pub fn capacity(&self, resource: usize) -> V {
        self.caps[resource]
    }

    /// All per-resource capacities, in resource order.
    #[must_use]
    pub fn capacities(&self) -> &[V] {
        &self.caps
    }

    /// Number of steps applied so far.
    #[must_use]
    pub fn current_step(&self) -> usize {
        self.steps
    }

    /// Whether processor `i` still has unfinished jobs.
    #[must_use]
    pub fn is_active(&self, processor: usize) -> bool {
        self.job_slot(processor).is_some()
    }

    /// The active (first unfinished) job of processor `i`.
    #[must_use]
    pub fn active_job(&self, processor: usize) -> Option<JobId> {
        self.job_slot(processor)
            .map(|_| JobId::new(processor, self.next_job[processor]))
    }

    /// Number of unfinished jobs on processor `i`.
    #[must_use]
    pub fn unfinished_jobs(&self, processor: usize) -> usize {
        (self.offsets[processor + 1] as usize - self.offsets[processor] as usize)
            - self.next_job[processor]
    }

    /// Per-step requirement cap of the active job of processor `i` on
    /// resource `resource` (`None` when the processor is idle).
    #[must_use]
    pub fn active_requirement(&self, processor: usize, resource: usize) -> Option<V> {
        self.job_slot(processor)
            .map(|slot| self.reqs[slot * self.resources + resource])
    }

    /// Remaining workload of processor `i`'s active job on resource
    /// `resource` (zero when idle).
    #[must_use]
    pub fn remaining(&self, processor: usize, resource: usize) -> V {
        self.frontier[processor * self.resources + resource]
    }

    /// Maximum share of resource `resource` the active job of processor `i`
    /// can usefully absorb this step: `min(remaining layer workload, per-step
    /// cap)`.
    #[must_use]
    pub fn step_demand(&self, processor: usize, resource: usize) -> V {
        match self.job_slot(processor) {
            Some(slot) => self.frontier[processor * self.resources + resource]
                .min(self.reqs[slot * self.resources + resource]),
            None => V::ZERO,
        }
    }

    /// Whether every job of the instance has been completed.
    #[must_use]
    pub fn all_done(&self) -> bool {
        (0..self.processors()).all(|i| !self.is_active(i))
    }

    /// Applies one time step with the given shares, `shares[i][r]` being
    /// processor `i`'s share of resource `r`, and returns the units
    /// usefully consumed per resource.
    ///
    /// # Panics
    ///
    /// Panics (in debug and release builds alike) if the shares are
    /// malformed or oversubscribe any resource — algorithms must never emit
    /// an infeasible step.
    pub fn push_step(&mut self, shares: &[Vec<V>]) -> Vec<V> {
        let k = self.resources;
        assert_eq!(
            shares.len(),
            self.processors(),
            "step must assign a share vector to every processor"
        );
        for (r, &cap) in self.caps.iter().enumerate() {
            let mut total = V::ZERO;
            for (i, row) in shares.iter().enumerate() {
                assert_eq!(row.len(), k, "processor {i} must receive {k} shares");
                assert!(
                    row[r] <= cap,
                    "share {:?} for processor {i} exceeds resource {r}'s capacity {cap:?}",
                    row[r]
                );
                total = total
                    .checked_add(row[r])
                    .unwrap_or_else(|| panic!("share total overflows on resource {r}"));
            }
            assert!(
                total <= cap,
                "step oversubscribes resource {r}: {total:?} assigned, capacity {cap:?}"
            );
        }

        let mut consumed = vec![V::ZERO; k];
        for (i, row) in shares.iter().enumerate() {
            let Some(slot) = self.job_slot(i) else {
                continue;
            };
            if self.frontier_free[i] > 0 {
                // A job with an all-zero requirement vector advances one
                // volume unit per step regardless of its shares.
                self.frontier_free[i] -= 1;
            } else {
                for r in 0..k {
                    let demand = self.frontier[i * k + r].min(self.reqs[slot * k + r]);
                    let used = row[r].min(demand);
                    self.frontier[i * k + r] = self.frontier[i * k + r].sub(used);
                    consumed[r] = consumed[r]
                        .checked_add(used)
                        .unwrap_or_else(|| panic!("consumption overflows on resource {r}"));
                }
            }
            let done =
                self.frontier_free[i] == 0 && (0..k).all(|r| self.frontier[i * k + r] == V::ZERO);
            if done {
                self.next_job[i] += 1;
                self.load_frontier(i);
            }
        }
        self.steps += 1;
        consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::job::Job;
    use crate::rational::ratio;
    use crate::scaled::ScaledScheduleBuilder;

    fn two_resource_instance() -> Instance {
        InstanceBuilder::new()
            .processor([ratio(1, 2), ratio(1, 4)])
            .processor([ratio(3, 4)])
            .extra_layer([vec![ratio(1, 3), ratio(5, 6)], vec![Ratio::ZERO]])
            .build()
    }

    #[test]
    fn scaled_and_rational_steppers_agree_step_for_step() {
        let inst = two_resource_instance();
        let mut scaled = MultiStepper::try_new_scaled(&inst).unwrap();
        let mut rational = MultiStepper::new_rational(&inst);
        let k = inst.resources();
        let m = inst.processors();
        let to_ratio = |v: u64, cap: u64| Ratio::new(i128::from(v), i128::from(cap));
        let mut guard = 0;
        while !scaled.all_done() {
            assert!(!rational.all_done());
            for i in 0..m {
                assert_eq!(scaled.is_active(i), rational.is_active(i));
                assert_eq!(scaled.active_job(i), rational.active_job(i));
                for r in 0..k {
                    assert_eq!(
                        to_ratio(scaled.step_demand(i, r), scaled.capacity(r)),
                        rational.step_demand(i, r)
                    );
                    assert_eq!(
                        to_ratio(scaled.remaining(i, r), scaled.capacity(r)),
                        rational.remaining(i, r)
                    );
                }
            }
            // Serve in processor order on every resource independently.
            let mut unit_shares = vec![vec![0u64; k]; m];
            let mut left: Vec<u64> = (0..k).map(|r| scaled.capacity(r)).collect();
            for (i, row) in unit_shares.iter_mut().enumerate() {
                for (r, cell) in row.iter_mut().enumerate() {
                    *cell = scaled.step_demand(i, r).min(left[r]);
                    left[r] -= *cell;
                }
            }
            let ratio_shares: Vec<Vec<Ratio>> = unit_shares
                .iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .map(|(r, &u)| to_ratio(u, scaled.capacity(r)))
                        .collect()
                })
                .collect();
            let consumed_units = scaled.push_step(&unit_shares);
            let consumed = rational.push_step(&ratio_shares);
            for r in 0..k {
                assert_eq!(to_ratio(consumed_units[r], scaled.capacity(r)), consumed[r]);
            }
            guard += 1;
            assert!(guard < 100, "stepper failed to make progress");
        }
        assert!(rational.all_done());
        assert_eq!(scaled.current_step(), rational.current_step());
    }

    #[test]
    fn single_resource_stepper_matches_the_scalar_builder() {
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(Ratio::ZERO, ratio(5, 2)), Job::unit(ratio(1, 2))])
            .processor_jobs([Job::new(ratio(1, 4), ratio(3, 1))])
            .build();
        let mut multi = MultiStepper::try_new_scaled(&inst).unwrap();
        let mut scalar = ScaledScheduleBuilder::try_new(&inst).unwrap();
        assert_eq!(multi.capacity(0), scalar.capacity());
        let mut guard = 0;
        while !scalar.all_done() {
            assert!(!multi.all_done());
            let m = inst.processors();
            let mut shares = vec![0u64; m];
            let mut left = scalar.capacity();
            for (i, share) in shares.iter_mut().enumerate() {
                assert_eq!(multi.step_demand(i, 0), scalar.step_demand_units(i));
                assert_eq!(multi.unfinished_jobs(i), scalar.unfinished_jobs(i));
                *share = scalar.step_demand_units(i).min(left);
                left -= *share;
            }
            multi.push_step(&shares.iter().map(|&s| vec![s]).collect::<Vec<_>>());
            scalar.push_step(shares);
            guard += 1;
            assert!(guard < 100);
        }
        assert!(multi.all_done());
    }

    #[test]
    fn binding_resource_throttles_progress() {
        // Both jobs are cheap on resource 0 but together oversubscribe
        // resource 1, so they cannot both finish in one step.
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 10)])
            .processor([ratio(1, 10)])
            .extra_layer([vec![ratio(3, 4)], vec![ratio(3, 4)]])
            .build();
        let mut stepper = MultiStepper::try_new_scaled(&inst).unwrap();
        let d0 = stepper.capacity(0);
        let d1 = stepper.capacity(1);
        // Give everything to processor 0 on resource 1.
        stepper.push_step(&[
            vec![stepper.step_demand(0, 0), stepper.step_demand(0, 1)],
            vec![
                d0 - stepper.step_demand(0, 0),
                d1 - stepper.step_demand(0, 1),
            ],
        ]);
        assert!(!stepper.is_active(0));
        // Processor 1 got the leftover of resource 1 (not enough: 1/4 < 3/4
        // needed), so it is still active.
        assert!(stepper.is_active(1));
        stepper.push_step(&[
            vec![0, 0],
            vec![stepper.step_demand(1, 0), stepper.step_demand(1, 1)],
        ]);
        assert!(stepper.all_done());
        assert_eq!(stepper.current_step(), 2);
    }

    #[test]
    #[should_panic(expected = "oversubscribes resource 1")]
    fn oversubscribed_layer_is_rejected() {
        let inst = InstanceBuilder::new()
            .processor([ratio(1, 2)])
            .processor([ratio(1, 2)])
            .extra_layer([vec![ratio(3, 4)], vec![ratio(3, 4)]])
            .build();
        let mut stepper = MultiStepper::try_new_scaled(&inst).unwrap();
        let d1 = stepper.capacity(1);
        let d0 = stepper.capacity(0);
        stepper.push_step(&[vec![d0 / 2, d1], vec![d0 / 2, d1]]);
    }

    #[test]
    fn all_zero_requirement_vector_jobs_take_ceil_volume_steps() {
        let inst = InstanceBuilder::new()
            .processor_jobs([Job::new(Ratio::ZERO, ratio(5, 2))])
            .extra_layer([vec![Ratio::ZERO]])
            .build();
        let mut stepper = MultiStepper::try_new_scaled(&inst).unwrap();
        for _ in 0..3 {
            assert!(stepper.is_active(0));
            stepper.push_step(&[vec![0, 0]]);
        }
        assert!(stepper.all_done());
        assert_eq!(stepper.current_step(), 3);
    }
}
