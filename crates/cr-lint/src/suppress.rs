//! Suppression comments: `// lint: allow(rule_name) — reason`.
//!
//! A suppression silences findings of `rule_name` on its own line and on
//! the next line that carries code (so the comment conventionally sits
//! directly above the construct it justifies, or trails it on the same
//! line). The reason is **mandatory** — a reasonless suppression is itself
//! a violation, and so is one naming an unknown rule: the suppressions in
//! the tree double as the documentation of every deliberate exception.

use crate::diag::Diagnostic;
use crate::lexer::Token;
use crate::rules::RULE_NAMES;
use std::collections::HashMap;

/// Parsed suppressions of one file.
#[derive(Debug, Default)]
pub struct Suppressions {
    /// line → rules suppressed on that line.
    by_line: HashMap<u32, Vec<&'static str>>,
}

impl Suppressions {
    /// Whether findings of `rule` at `line` are suppressed.
    #[must_use]
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.by_line
            .get(&line)
            .is_some_and(|rules| rules.contains(&rule))
    }

    /// Whether the file carries no suppressions at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_line.is_empty()
    }
}

/// Extracts suppressions from `tokens`, reporting malformed ones (missing
/// reason, unknown rule) into `diags`.
#[must_use]
pub fn parse(path: &str, tokens: &[Token], diags: &mut Vec<Diagnostic>) -> Suppressions {
    let mut by_line: HashMap<u32, Vec<&'static str>> = HashMap::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_comment() {
            continue;
        }
        // Doc comments (`///`, `//!`, `/** … */`, `/*! … */`) are prose —
        // they may *describe* the suppression syntax without granting one.
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| tok.text.starts_with(p))
        {
            continue;
        }
        let Some(pos) = tok.text.find("lint: allow(") else {
            continue;
        };
        let rest = &tok.text[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: tok.line,
                rule: "suppression",
                message: "malformed suppression: missing `)` after the rule name".to_string(),
            });
            continue;
        };
        let rule_name = rest[..close].trim();
        let Some(rule) = RULE_NAMES.iter().find(|r| **r == rule_name) else {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: tok.line,
                rule: "suppression",
                message: format!(
                    "suppression names unknown rule `{rule_name}` (known: {})",
                    RULE_NAMES.join(", ")
                ),
            });
            continue;
        };
        // The reason: everything after the `)`, minus separator dashes.
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t'])
            .trim_start_matches(['—', '–', '-', ':'])
            .trim();
        if reason.len() < 3 {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: tok.line,
                rule: "suppression",
                message: format!(
                    "suppression of `{rule_name}` carries no reason: write \
                     `// lint: allow({rule_name}) — <why this is safe>`"
                ),
            });
            continue;
        }
        // Covered lines: the comment's own line, plus — when the comment
        // stands alone on its line — the next line carrying code.
        let mut lines = vec![tok.line];
        let leading = i == 0 || tokens[i - 1].line < tok.line;
        if leading {
            if let Some(next) = tokens[i + 1..].iter().find(|t| !t.is_comment()) {
                lines.push(next.line);
            }
        }
        for line in lines {
            by_line.entry(line).or_default().push(rule);
        }
    }
    Suppressions { by_line }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn suppression_covers_own_and_next_code_line() {
        let src = "// lint: allow(panic_hygiene) — provably non-empty\nlet x = v.first().unwrap();";
        let mut diags = Vec::new();
        let s = parse("f.rs", &lex(src), &mut diags);
        assert!(diags.is_empty());
        assert!(s.covers("panic_hygiene", 1));
        assert!(s.covers("panic_hygiene", 2));
        assert!(!s.covers("panic_hygiene", 3));
        assert!(!s.covers("lock_discipline", 2));
    }

    #[test]
    fn reasonless_suppression_is_flagged_and_inert() {
        let src = "// lint: allow(panic_hygiene)\nfoo.unwrap();";
        let mut diags = Vec::new();
        let s = parse("f.rs", &lex(src), &mut diags);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no reason"));
        assert!(!s.covers("panic_hygiene", 2));
    }

    #[test]
    fn unknown_rule_is_flagged() {
        let src = "// lint: allow(no_such_rule) — whatever\nfoo();";
        let mut diags = Vec::new();
        let _ = parse("f.rs", &lex(src), &mut diags);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown rule"));
    }

    #[test]
    fn plain_ascii_dash_separator_works() {
        let src = "// lint: allow(cancel_coverage) - bounded by processor count\nfor i in 0..m {}";
        let mut diags = Vec::new();
        let s = parse("f.rs", &lex(src), &mut diags);
        assert!(diags.is_empty());
        assert!(s.covers("cancel_coverage", 2));
    }
}
