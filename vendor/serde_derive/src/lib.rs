//! Derive macros for the workspace-local `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (no registry access): the input token
//! stream is scanned by hand.  Supported shapes are the ones this workspace
//! actually derives on — non-generic structs with named fields, tuple
//! structs, unit structs, and enums whose variants are unit-like or carry
//! named fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(&input, Mode::Serialize)
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(&input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<(String, Shape)>),
}

fn expand(input: &TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = parse_item(input);
    let code = match mode {
        Mode::Serialize => gen_serialize(&name, &shape),
        Mode::Deserialize => gen_deserialize(&name, &shape),
    };
    code.parse().expect("derive expansion must be valid Rust")
}

/// Extracts the item name and field layout from a `struct` / `enum` item.
fn parse_item(input: &TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.clone().into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            None => Shape::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(&g.stream()))
            }
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(&g.stream()))
            }
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("serde_derive (vendored): unsupported item kind `{other}`"),
    };
    (name, shape)
}

/// Splits a brace-group token stream into top-level comma-separated chunks.
fn split_top_level(stream: &TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream.clone() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("non-empty").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Field names of a named-field struct body, in declaration order.
fn parse_named_fields(stream: &TokenStream) -> Vec<String> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let mut name = None;
            let mut j = 0;
            while j < chunk.len() {
                match &chunk[j] {
                    TokenTree::Punct(p) if p.as_char() == '#' => j += 2,
                    TokenTree::Ident(id) if id.to_string() == "pub" => {
                        j += 1;
                        if let Some(TokenTree::Group(g)) = chunk.get(j) {
                            if g.delimiter() == Delimiter::Parenthesis {
                                j += 1;
                            }
                        }
                    }
                    TokenTree::Ident(id) => {
                        name = Some(id.to_string());
                        break;
                    }
                    other => panic!("unexpected token in field: {other:?}"),
                }
            }
            name.expect("field must have a name")
        })
        .collect()
}

fn count_tuple_fields(stream: &TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Variant names and payload shapes of an enum body.
fn parse_variants(stream: &TokenStream) -> Vec<(String, Shape)> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let mut j = 0;
            while matches!(chunk.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
                j += 2;
            }
            let name = match chunk.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            let shape = match chunk.get(j + 1) {
                None => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(&g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(&g.stream()))
                }
                other => panic!("unsupported variant body: {other:?}"),
            };
            (name, shape)
        })
        .collect()
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            if *n == 1 {
                items.into_iter().next().expect("one field")
            } else {
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
        }
        Shape::Named(fields) => obj_literal(fields, "self."),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| match vs {
                    Shape::Unit => format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                    ),
                    Shape::Named(fields) => {
                        let pat: Vec<&str> = fields.iter().map(String::as_str).collect();
                        let inner = obj_literal(fields, "");
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), {inner})]),",
                            pat.join(", ")
                        )
                    }
                    _ => panic!("tuple enum variants are not supported"),
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Value {{ {body} }}\n}}\n"
    )
}

/// `Value::Object` literal serializing `prefix`-qualified fields.
fn obj_literal(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            let amp = if prefix.is_empty() { "" } else { "&" };
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({amp}{prefix}{f}))"
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Tuple(n) if *n == 1 => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize(items.get({i}).ok_or_else(|| ::serde::Error::custom(\"tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match value {{ ::serde::Value::Array(items) => ::std::result::Result::Ok({name}({})), _ => ::std::result::Result::Err(::serde::Error::custom(\"expected array\")) }}",
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(value, \"{f}\")?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, vs)| matches!(vs, Shape::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let named_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, vs)| match vs {
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(inner, \"{f}\")?"))
                            .collect();
                        Some(format!(
                            "if let ::std::option::Option::Some(inner) = value.get(\"{v}\") {{ return ::std::result::Result::Ok({name}::{v} {{ {} }}); }}",
                            inits.join(", ")
                        ))
                    }
                    _ => None,
                })
                .collect();
            format!(
                "if let ::serde::Value::String(tag) = value {{ return match tag.as_str() {{ {} _ => ::std::result::Result::Err(::serde::Error::custom(\"unknown enum variant\")) }}; }} {} ::std::result::Result::Err(::serde::Error::custom(\"unknown enum variant\"))",
                unit_arms.join(" "),
                named_arms.join(" ")
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n    fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n}}\n"
    )
}
