//! E2 — regenerates Figure 2: the nested versus unnested schedules for the
//! four-50%-jobs example, and the Lemma 1 normalization that repairs the
//! unnested one.

#![forbid(unsafe_code)]

use cr_core::properties::PropertyReport;
use cr_core::{transform, Ratio, Schedule};
use cr_instances::figure2_instance;
use cr_viz::{render_instance, render_schedule};

fn main() {
    let instance = figure2_instance();
    println!("E2 / Figure 2 — nested vs. unnested schedules\n");
    println!("{}", render_instance(&instance));

    let half = Ratio::from_percent(50);
    let zero = Ratio::ZERO;

    // Figure 2b: the nested schedule.
    let nested = Schedule::new(vec![
        vec![half, half, zero],
        vec![half, half, zero],
        vec![half, zero, half],
        vec![half, zero, half],
    ]);
    // Figure 2c: the unnested schedule (p1's job runs while p2's later-started
    // job is unfinished).
    let unnested = Schedule::new(vec![
        vec![half, half, zero],
        vec![half, zero, half],
        vec![half, half, zero],
        vec![half, zero, half],
    ]);

    for (label, schedule) in [
        ("Figure 2b (nested)", &nested),
        ("Figure 2c (unnested)", &unnested),
    ] {
        let trace = schedule.trace(&instance).expect("feasible schedule");
        let report = PropertyReport::analyze(&trace);
        println!("{label}: makespan {}  [{report}]", trace.makespan());
        println!("{}", render_schedule(&instance, &trace));
    }

    let normalized = transform::normalize(&instance, &unnested);
    let trace = normalized.trace(&instance).expect("feasible schedule");
    let report = PropertyReport::analyze(&trace);
    println!(
        "Lemma 1 normalization of the unnested schedule: makespan {}  [{report}]",
        trace.makespan()
    );
    println!("{}", render_schedule(&instance, &trace));
    println!(
        "paper: both schedules have makespan 4, only 2b is nested; normalization must not\n\
         increase the makespan — measured normalized makespan: {}",
        trace.makespan()
    );
}
