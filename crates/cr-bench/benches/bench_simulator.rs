//! E10 — simulation throughput of the many-core shared-bus engine under the
//! built-in arbitration policies.

use cr_instances::{generate_workload, TaskMix, WorkloadConfig};
use cr_sim::{EqualSharePolicy, GreedyBalancePolicy, RoundRobinPolicy, Simulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for &cores in &[8usize, 32] {
        let cfg = WorkloadConfig {
            cores,
            phases_per_task: 16,
            mix: TaskMix::Mixed,
            denominator: 100,
            unit_phases: true,
        };
        let workload = generate_workload(&cfg, 99);
        let sim = Simulator::from_instance(&workload);
        group.bench_with_input(BenchmarkId::new("GreedyBalance", cores), &sim, |b, sim| {
            b.iter(|| black_box(sim.run(&mut GreedyBalancePolicy).unwrap().report.makespan));
        });
        group.bench_with_input(BenchmarkId::new("RoundRobin", cores), &sim, |b, sim| {
            b.iter(|| black_box(sim.run(&mut RoundRobinPolicy).unwrap().report.makespan));
        });
        group.bench_with_input(BenchmarkId::new("EqualShare", cores), &sim, |b, sim| {
            b.iter(|| black_box(sim.run(&mut EqualSharePolicy).unwrap().report.makespan));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
