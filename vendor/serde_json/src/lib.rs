//! Minimal, workspace-local stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde` [`Value`] data model to JSON text and parses
//! JSON text back.  Output is fully deterministic: object keys keep struct
//! declaration order, integers print as exact decimals (`i128` range, so
//! `Ratio` components survive), and floats use Rust's shortest round-trip
//! formatting.

#![forbid(unsafe_code)]

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// Error raised by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching the real `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T> {
    let value = parse(text)?;
    Ok(T::deserialize(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(Number::Int(i)) => out.push_str(&i.to_string()),
        Value::Number(Number::Float(f)) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, v, d| {
                write_value(o, v, indent, d);
            });
        }
        Value::Object(entries) => {
            write_seq(
                out,
                entries.iter(),
                indent,
                depth,
                ('{', '}'),
                |o, (k, v), d| {
                    write_string(o, k);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    write_value(o, v, indent, d);
                },
            );
        }
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(brackets.1);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let text = format!("{f}");
        out.push_str(&text);
        // `{}` prints integral floats without a decimal point; keep the
        // float-ness visible so round-trips stay type-stable.
        if !text.contains('.') && !text.contains('e') && !text.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("empty input"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Number(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("invalid number literal `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let value = Value::Object(vec![
            ("name".into(), Value::String("fig\"1\"\n".into())),
            (
                "rows".into(),
                Value::Array(vec![
                    Value::Number(Number::Int(-7)),
                    Value::Number(Number::Float(0.25)),
                    Value::Bool(true),
                    Value::Null,
                ]),
            ),
        ]);
        let compact = to_string(&value).unwrap();
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(parse(&compact).unwrap(), value);
        assert_eq!(parse(&pretty).unwrap(), value);
    }

    #[test]
    fn i128_range_integers_survive() {
        let big = i128::MAX - 11;
        let text = to_string(&big).unwrap();
        let back: i128 = from_str(&text).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }
}
