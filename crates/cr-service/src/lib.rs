//! # cr-service — the batch solver service
//!
//! The step from "experiment pipeline" to "serving traffic": a long-running
//! [`SolverService`] accepts batches of [`SolveRequest`]s, fans them out
//! across the same deterministic rayon pool the per-round OPT(m) expansion
//! uses, and returns one `Result<SolveOutcome, SolveError>` per request —
//! **in batch order**, with per-request isolation (a failing request
//! occupies its slot with a structured [`SolveError`] without poisoning its
//! siblings).
//!
//! Determinism contract: results are a pure function of the requests.
//! Thread count, batch split points and the warm conversion cache never
//! change a byte of the (serialized) responses — the property-test suite in
//! `tests/service.rs` pins this.
//!
//! The service keeps a warm per-instance cache of [`Prepared`] state (the
//! exact engines' `ScaledInstance` conversion, the scheduling grid
//! viability and the instance-only lower bounds), so repeated requests
//! against one instance — the common shape of a method-comparison batch —
//! pay for the conversion once per service lifetime, not once per request.
//! Cache entries are keyed by a structural FNV-1a hash of the instance and
//! verified by full equality on lookup, so a hash collision can never hand
//! a request another instance's conversions.
//!
//! The [`wire`] module speaks JSONL: one request object per line in, one
//! response object per line out, implemented by the `cr-serve` binary so a
//! driver process can stream instances in and schedules + bounds out of one
//! warm process.  The [`net`] module is the production front door: a TCP
//! server multiplexing many concurrent clients onto one warm service, with
//! per-client quotas, global load shedding, schedule streaming and graceful
//! drain.  `docs/WIRE.md` specifies the protocol frame by frame;
//! `docs/ARCHITECTURE.md` maps the crates.
//!
//! # Example
//!
//! ```
//! use cr_algos::solver::SolveRequest;
//! use cr_core::Instance;
//! use cr_service::SolverService;
//!
//! let service = SolverService::with_standard_registry();
//! let instance = Instance::unit_from_percentages(&[&[60, 40], &[40, 60]]);
//! let batch = vec![
//!     SolveRequest::new("GreedyBalance", instance.clone()),
//!     SolveRequest::new("OptM", instance),
//! ];
//! let results = service.solve_batch(&batch);
//! let greedy = results[0].as_ref().unwrap().makespan.unwrap();
//! let exact = results[1].as_ref().unwrap().makespan.unwrap();
//! assert!(exact <= greedy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod net;
pub mod wire;

use cr_algos::solver::{Prepared, Registry, SolveError, SolveOutcome, SolveRequest, Solver};
use cr_core::{CancelToken, Instance};
use rayon::prelude::*;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Instances the warm conversion cache may hold before it is wholesale
/// evicted (a simple bound so a long-running process cannot grow without
/// limit; batches re-warm it on the next call).
const CACHE_CAP: usize = 4096;

/// One hash bucket of the conversion cache: the instances that hashed to
/// the key, each with its prepared state (equality-verified on lookup).
type CacheBucket = Vec<(Instance, Arc<Prepared>)>;

/// Structural FNV-1a hash of an instance (processor layout plus every
/// requirement/volume rational), cheap enough for one hash per request.
fn instance_hash(instance: &Instance) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    fold(instance.processors() as u64);
    for i in 0..instance.processors() {
        fold(instance.jobs_on(i) as u64);
        for job in instance.processor_jobs(i) {
            for ratio in [job.requirement, job.volume] {
                fold(ratio.numer() as u64);
                fold((ratio.numer() as u128 >> 64) as u64);
                fold(ratio.denom() as u64);
                fold((ratio.denom() as u128 >> 64) as u64);
            }
        }
    }
    hash
}

/// Finds `instance` in a bucket (full equality, not just hash equality).
fn bucket_get(bucket: &CacheBucket, instance: &Instance) -> Option<Arc<Prepared>> {
    bucket
        .iter()
        .find(|(cached, _)| cached == instance)
        .map(|(_, prepared)| Arc::clone(prepared))
}

/// Renders a panic payload as a one-line message for a structured
/// [`SolveError::Internal`] row.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "solver panicked with a non-string payload".to_string(),
        },
    }
}

/// Runs `f` behind a panic boundary, mapping an unwind to the panic's
/// message.  `AssertUnwindSafe` is sound here because a caught panic either
/// never touched shared state (`Prepared::new` builds a fresh value) or the
/// shared state it touched is the poison-recovering cache, which is cleared
/// and rebuilt on the next lock.
fn catch_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(panic_message)
}

/// A deliberately panicking solver registered as `debug:panic` by
/// [`register_debug_methods`]: the chaos harness and the panic-isolation
/// tests dispatch it to prove a panicking solver yields exactly one
/// `internal_error` row while its batch siblings succeed.
#[derive(Debug, Clone, Copy, Default)]
struct DebugPanicSolver;

impl Solver for DebugPanicSolver {
    fn solve_prepared(
        &self,
        _request: &SolveRequest,
        _prepared: &Prepared,
    ) -> Result<SolveOutcome, SolveError> {
        // lint: allow(panic_hygiene) — deliberate: the debug:panic method exists to exercise panic isolation
        panic!("deliberate panic (debug:panic test method)")
    }
}

/// Registers the debug fault-injection methods (currently `debug:panic`, a
/// solver that always panics) on `registry`.  Serving binaries only expose
/// these behind an explicit opt-in flag.
pub fn register_debug_methods(registry: &mut Registry) {
    registry.register("debug:panic", Box::new(DebugPanicSolver));
}

/// The service's pre-created observability handles: the `cr-obs` registry
/// they record into plus the conversion-cache counters, resolved once at
/// construction so the hot paths never touch the registry's name table
/// (see `docs/OBSERVABILITY.md` for the name catalog).
struct ServiceObs {
    registry: cr_obs::Registry,
    cache_hits: cr_obs::Counter,
    cache_misses: cr_obs::Counter,
    cache_evictions: cr_obs::Counter,
}

impl ServiceObs {
    fn new(registry: cr_obs::Registry) -> Self {
        ServiceObs {
            cache_hits: registry.counter(cr_obs::names::SERVICE_CACHE_HITS),
            cache_misses: registry.counter(cr_obs::names::SERVICE_CACHE_MISSES),
            cache_evictions: registry.counter(cr_obs::names::SERVICE_CACHE_EVICTIONS),
            registry,
        }
    }
}

/// A long-running batch solver: a registry plus a warm per-instance
/// conversion cache.
pub struct SolverService {
    registry: Registry,
    cache: Mutex<HashMap<u64, CacheBucket>>,
    /// Times the cache was cleared after recovering a poisoned lock.
    cache_rebuilds: AtomicU64,
    /// Cache observability handles (hits / misses / evictions).
    obs: ServiceObs,
}

impl SolverService {
    /// A service over an explicit registry, recording observability into
    /// the process-wide global `cr-obs` registry.
    #[must_use]
    pub fn new(registry: Registry) -> Self {
        SolverService::with_obs_registry(registry, cr_obs::Registry::global().clone())
    }

    /// A service recording its cache counters into an explicit `cr-obs`
    /// registry instead of the process-wide global.  Tests asserting exact
    /// counter values inject a fresh registry here so concurrent tests in
    /// the same binary cannot perturb the counts (spans still record into
    /// the global registry — span paths are thread-scoped, not
    /// service-scoped).
    #[must_use]
    pub fn with_obs_registry(registry: Registry, obs: cr_obs::Registry) -> Self {
        SolverService {
            registry,
            cache: Mutex::new(HashMap::new()),
            cache_rebuilds: AtomicU64::new(0),
            obs: ServiceObs::new(obs),
        }
    }

    /// A service over the full standard line-up: every offline method of
    /// [`cr_algos::solver::registry`] plus the `sim:`-prefixed online
    /// simulator methods.
    #[must_use]
    pub fn with_standard_registry() -> Self {
        SolverService::new(cr_sim::full_registry())
    }

    /// [`SolverService::with_standard_registry`] plus the opt-in debug
    /// fault-injection methods of [`register_debug_methods`].
    #[must_use]
    pub fn with_standard_registry_and_debug() -> Self {
        let mut registry = cr_sim::full_registry();
        register_debug_methods(&mut registry);
        SolverService::new(registry)
    }

    /// The registry requests are dispatched against.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Number of instances currently held in the warm conversion cache
    /// (observability / test hook).
    #[must_use]
    pub fn cached_instances(&self) -> usize {
        self.lock_cache().values().map(Vec::len).sum()
    }

    /// Times the warm cache was cleared and rebuilt after recovering a
    /// poisoned lock (a panic unwound through a cache critical section).
    #[must_use]
    pub fn cache_rebuilds(&self) -> u64 {
        self.cache_rebuilds.load(Ordering::Relaxed)
    }

    /// The `cr-obs` registry this service's cache counters record into
    /// (the process-wide global unless injected via
    /// [`SolverService::with_obs_registry`]).  The serving tier's
    /// `{"control":"metrics"}` frame dumps a snapshot of this registry.
    #[must_use]
    pub fn obs_registry(&self) -> &cr_obs::Registry {
        &self.obs.registry
    }

    /// Conversion-cache traffic since construction, as
    /// `(hits, misses, evictions)`: a *hit* is a request whose conversion
    /// was already warm when its batch was classified (in the cache, or a
    /// duplicate of an earlier request in the same batch), a *miss* is a
    /// fresh conversion, an *eviction* is one entry dropped by the
    /// wholesale clear at the cache cap.  All three read zero under the
    /// `obs-off` feature.
    #[must_use]
    pub fn cache_counters(&self) -> (u64, u64, u64) {
        (
            self.obs.cache_hits.value(),
            self.obs.cache_misses.value(),
            self.obs.cache_evictions.value(),
        )
    }

    /// Locks the conversion cache, recovering from poisoning: a panic that
    /// unwound mid-mutation may have left a bucket half-written, so the
    /// recovered map is cleared (it is only a cache — the next batch
    /// re-warms it) and the rebuild is counted for `stats` observability.
    fn lock_cache(&self) -> MutexGuard<'_, HashMap<u64, CacheBucket>> {
        match self.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.clear();
                self.cache.clear_poison();
                self.cache_rebuilds.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Deliberately poisons the cache mutex (panics a helper thread while
    /// it holds the lock).  Test hook for the poison-recovery path.
    #[doc(hidden)]
    pub fn poison_cache_for_tests(&self) {
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    // lint: allow(panic_hygiene) — deliberate: the hook panics while holding the guard to poison the cache for tests
                    let _guard = self.cache.lock().expect("cache already poisoned");
                    // lint: allow(panic_hygiene) — deliberate poison so tests can exercise lock recovery
                    panic!("deliberate poison (test hook)");
                })
                .join()
        });
    }

    /// Inserts `(instance, prepared)` under `key` unless an equal instance
    /// is already cached; evicts wholesale at the cap.  Caller holds no
    /// cache lock.
    fn cache_insert(&self, key: u64, instance: &Instance, prepared: &Arc<Prepared>) {
        let mut cache = self.lock_cache();
        let held = cache.values().map(Vec::len).sum::<usize>();
        if held >= CACHE_CAP {
            self.obs
                .cache_evictions
                .add(u64::try_from(held).unwrap_or(u64::MAX));
            cache.clear();
        }
        let bucket = cache.entry(key).or_default();
        if bucket_get(bucket, instance).is_none() {
            bucket.push((instance.clone(), Arc::clone(prepared)));
        }
    }

    /// The warm [`Prepared`] state for `instance`, converting and caching on
    /// miss.
    fn prepared_for(&self, instance: &Instance) -> Arc<Prepared> {
        let key = instance_hash(instance);
        {
            let cache = self.lock_cache();
            if let Some(hit) = cache.get(&key).and_then(|b| bucket_get(b, instance)) {
                self.obs.cache_hits.inc();
                return hit;
            }
        }
        self.obs.cache_misses.inc();
        let prepared = {
            let _prepare_span = cr_obs::Span::enter(cr_obs::names::SPAN_SERVE_PREPARE);
            Arc::new(Prepared::new(instance))
        };
        self.cache_insert(key, instance, &prepared);
        prepared
    }

    /// Solves one request against the warm cache.
    ///
    /// # Errors
    ///
    /// Whatever the dispatched solver reports (see [`SolveError`]).
    pub fn solve(&self, request: &SolveRequest) -> Result<SolveOutcome, SolveError> {
        let prepared = self.prepared_for(&request.instance);
        let _solve_span = cr_obs::Span::enter(cr_obs::names::SPAN_SERVE_SOLVE);
        self.registry.solve_prepared(request, &prepared)
    }

    /// The instance-only lower bounds from the warm cache, without running
    /// any solver ([`cr_algos::solver::LowerBounds::best`] stays `None`;
    /// dispatch the `"Bounds"` method for the schedule-derived bound).
    #[must_use]
    pub fn lower_bounds(&self, instance: &Instance) -> cr_algos::solver::LowerBounds {
        self.prepared_for(instance).lower_bounds
    }

    /// Solves a batch, fanning the requests out across the rayon pool.
    ///
    /// Results come back in batch order — response `i` answers request `i` —
    /// and requests are isolated: a failing request returns its
    /// [`SolveError`] in its slot while its siblings succeed.  The batch is
    /// solved in two phases: every *distinct* instance in the batch is
    /// converted (or fetched from the warm cache) first, then all requests
    /// solve in parallel against the shared conversions.
    #[must_use]
    pub fn solve_batch(&self, requests: &[SolveRequest]) -> Vec<Result<SolveOutcome, SolveError>> {
        self.solve_batch_cancellable(requests, &CancelToken::never())
    }

    /// [`Self::solve_batch`] under a parent [`CancelToken`]: every request
    /// solves under a child of `parent` additionally bounded by its own
    /// `budget.max_wall_ms`, so cancelling `parent` (say, because the
    /// requesting connection died) stops the whole flush cooperatively and
    /// each over-deadline request reports
    /// [`SolveError::DeadlineExceeded`] in its slot.
    ///
    /// Isolation is complete: a request whose solver *panics* occupies its
    /// slot with [`SolveError::Internal`] while its siblings return
    /// normally, and the panic never unwinds into the caller.
    #[must_use]
    pub fn solve_batch_cancellable(
        &self,
        requests: &[SolveRequest],
        parent: &CancelToken,
    ) -> Vec<Result<SolveOutcome, SolveError>> {
        // Phase 1: warm the conversion cache for every distinct instance
        // not already in it.
        let keys: Vec<u64> = requests
            .iter()
            .map(|r| instance_hash(&r.instance))
            .collect();
        let mut missing: Vec<usize> = Vec::new();
        {
            let cache = self.lock_cache();
            for (idx, (request, &key)) in requests.iter().zip(&keys).enumerate() {
                let in_cache = cache
                    .get(&key)
                    .and_then(|b| bucket_get(b, &request.instance))
                    .is_some();
                // Hash first — full instance equality only on key collision.
                let in_batch = missing
                    .iter()
                    // lint: allow(panic_hygiene) — `missing` holds indices from enumerating these same `requests`/`keys`
                    .any(|&prev| keys[prev] == key && requests[prev].instance == request.instance);
                if !in_cache && !in_batch {
                    missing.push(idx);
                } else {
                    // Warm at classification time: either already cached or
                    // a duplicate of an earlier request in this batch.
                    self.obs.cache_hits.inc();
                }
            }
        }
        self.obs
            .cache_misses
            .add(u64::try_from(missing.len()).unwrap_or(u64::MAX));
        let fresh: Vec<Result<Arc<Prepared>, String>> = missing
            .par_iter()
            .map(|&idx| {
                catch_panic(|| {
                    let _prepare_span = cr_obs::Span::enter(cr_obs::names::SPAN_SERVE_PREPARE);
                    // lint: allow(panic_hygiene) — `missing` holds indices from enumerating these same `requests`
                    Arc::new(Prepared::new(&requests[idx].instance))
                })
            })
            .collect();
        for (&idx, prepared) in missing.iter().zip(&fresh) {
            if let Ok(prepared) = prepared {
                // lint: allow(panic_hygiene) — `missing` holds indices from enumerating these same `requests`/`keys`
                self.cache_insert(keys[idx], &requests[idx].instance, prepared);
            }
        }
        let prepared: Vec<Result<Arc<Prepared>, String>> = {
            let cache = self.lock_cache();
            requests
                .iter()
                .zip(&keys)
                .map(|(request, key)| {
                    match cache
                        .get(key)
                        .and_then(|b| bucket_get(b, &request.instance))
                    {
                        Some(hit) => Ok(hit),
                        // Either evicted between phases (cache overflow) or
                        // its conversion panicked above; retry behind the
                        // boundary so a deterministic conversion panic
                        // stays one structured row.
                        None => {
                            self.obs.cache_misses.inc();
                            catch_panic(|| {
                                let _prepare_span =
                                    cr_obs::Span::enter(cr_obs::names::SPAN_SERVE_PREPARE);
                                Arc::new(Prepared::new(&request.instance))
                            })
                        }
                    }
                })
                .collect()
        };

        // Phase 2: solve every request against the shared conversions, in
        // parallel, order-stable, each behind its own panic boundary.
        let work: Vec<(usize, Result<Arc<Prepared>, String>)> =
            prepared.into_iter().enumerate().collect();
        work.par_iter()
            .map(|(idx, prepared)| match prepared {
                Ok(prepared) => catch_panic(|| {
                    let _solve_span = cr_obs::Span::enter(cr_obs::names::SPAN_SERVE_SOLVE);
                    self.registry
                        // lint: allow(panic_hygiene) — `work` pairs each prepared result with its index into these same `requests`
                        .solve_cancellable(&requests[*idx], prepared, parent)
                })
                .unwrap_or_else(|message| Err(SolveError::Internal { message })),
                Err(message) => Err(SolveError::Internal {
                    message: message.clone(),
                }),
            })
            .collect()
    }
}

impl Default for SolverService {
    fn default() -> Self {
        SolverService::with_standard_registry()
    }
}
