//! The workspace metric and span vocabulary.
//!
//! Every name recorded into the global registry is declared here, once, as
//! a `pub const` — recording sites import these instead of retyping
//! strings.  The [`METRIC_NAMES`] and [`SPAN_NAMES`] arrays restate the
//! same names as plain string literals because the `cr-lint` `vocab_sync`
//! rule lexes this file and cross-checks the array contents against the
//! catalog tables in `docs/OBSERVABILITY.md`, both directions — a metric
//! added here without documentation (or documented without existing) fails
//! CI.  The `consts_cover_the_arrays` test keeps the two spellings glued.
//!
//! Dynamic families (one counter per solver method) are declared by their
//! template spelling, e.g. `service.solve.by_method.<method>`; recording
//! sites substitute the final segment.  Only *registered* solver methods
//! get a counter, so client-supplied garbage cannot grow the registry.

/// Requests admitted into a batch flush by the serving tier (per flush).
pub const SERVE_BATCHES: &str = "serve.batches";
/// Histogram of flushed batch sizes (lines per flush, including rejects).
pub const SERVE_BATCH_SIZE: &str = "serve.batch_size";
/// Conversion-cache entries dropped by the wholesale eviction at capacity.
pub const SERVICE_CACHE_EVICTIONS: &str = "service.cache.evictions";
/// Batch/solo lookups served by an already-cached conversion.
pub const SERVICE_CACHE_HITS: &str = "service.cache.hits";
/// Lookups that had to run a fresh instance conversion.
pub const SERVICE_CACHE_MISSES: &str = "service.cache.misses";
/// Per-method solve dispatches; the final segment is the registered
/// solver key (template — see the module docs).
pub const SERVICE_SOLVE_BY_METHOD: &str = "service.solve.by_method.<method>";
/// Solve dispatches that returned a structured error.
pub const SERVICE_SOLVE_ERRORS: &str = "service.solve.errors";
/// Total solve dispatches through the solver registry.
pub const SERVICE_SOLVE_TOTAL: &str = "service.solve.total";
/// Client connections accepted by the socket server.
pub const NET_CONNECTIONS: &str = "net.connections";
/// Connections closed by the idle-timeout reaper.
pub const NET_IDLE_CLOSED: &str = "net.idle_closed";
/// Requests shed with `overloaded` by the admission gate.
pub const NET_OVERLOADED: &str = "net.overloaded";
/// Requests rejected by the per-connection quota.
pub const NET_QUOTA_REJECTED: &str = "net.quota_rejected";
/// Requests answered (result or structured error) by the socket server.
pub const NET_SERVED: &str = "net.served";
/// Worker panics isolated by the per-request catch.
pub const NET_WORKER_PANICS: &str = "net.worker_panics";
/// Search rounds executed by the OPT(m) engines (scaled and rational).
pub const OPTM_ROUNDS: &str = "optm.rounds";
/// Frontier configurations entering the domination filter, summed over
/// rounds.
pub const OPTM_ROUND_CANDIDATES: &str = "optm.round_candidates";
/// Frontier configurations surviving the domination filter, summed over
/// rounds.
pub const OPTM_ROUND_SURVIVORS: &str = "optm.round_survivors";
/// Subset-DFS extension steps in the shared choice enumerator.
pub const SUBSET_DFS_NODES: &str = "subset_dfs.nodes";
/// Simulated time steps executed across all runs.
pub const SIM_STEPS: &str = "sim.steps";
/// Resource units consumed across all simulated steps.
pub const SIM_CONSUMED_UNITS: &str = "sim.consumed_units";
/// Resource units wasted (capacity minus consumption) across all steps.
pub const SIM_WASTED_UNITS: &str = "sim.wasted_units";
/// Histogram of per-window utilization (parts per million) over
/// fixed-size step windows; see `cr_sim::obs::UTILIZATION_WINDOW`.
pub const SIM_WINDOW_UTILIZATION_PPM: &str = "sim.window_utilization_ppm";
/// Cores that starved at least one step in the most recent run.
pub const SIM_STARVED_CORES: &str = "sim.starved_cores";
/// Index of the bottleneck resource in the most recent multi-resource run.
pub const SIM_BOTTLENECK_RESOURCE: &str = "sim.bottleneck_resource";

/// Wire-tier span: parsing one request line.
pub const SPAN_SERVE_PARSE: &str = "serve.parse";
/// Service span: one fresh instance conversion (cache miss path).
pub const SPAN_SERVE_PREPARE: &str = "serve.prepare";
/// Service span: one solver dispatch (wraps the engine).
pub const SPAN_SERVE_SOLVE: &str = "serve.solve";
/// Wire-tier span: serializing one response line.
pub const SPAN_SERVE_SERIALIZE: &str = "serve.serialize";
/// OPT(m) span: one whole configuration search.
pub const SPAN_OPTM_SEARCH: &str = "optm.search";
/// OPT(m) span: one search round (expand + filter), nested in the search.
pub const SPAN_OPTM_ROUND: &str = "optm.round";
/// OptTwo span: the two-processor DP table build.
pub const SPAN_OPT_TWO_DP: &str = "opt_two.dp";
/// Simulator span: one policy run over an instance.
pub const SPAN_SIM_RUN: &str = "sim.run";

/// Every metric name (or dynamic-family template) the workspace registers,
/// as plain literals for the `vocab_sync` lint.  Keep sorted.
pub const METRIC_NAMES: [&str; 24] = [
    "net.connections",
    "net.idle_closed",
    "net.overloaded",
    "net.quota_rejected",
    "net.served",
    "net.worker_panics",
    "optm.round_candidates",
    "optm.round_survivors",
    "optm.rounds",
    "serve.batch_size",
    "serve.batches",
    "service.cache.evictions",
    "service.cache.hits",
    "service.cache.misses",
    "service.solve.by_method.<method>",
    "service.solve.errors",
    "service.solve.total",
    "sim.bottleneck_resource",
    "sim.consumed_units",
    "sim.starved_cores",
    "sim.steps",
    "sim.wasted_units",
    "sim.window_utilization_ppm",
    "subset_dfs.nodes",
];

/// Every span name the workspace enters, as plain literals for the
/// `vocab_sync` lint.  Keep sorted.  Recorded span *paths* are `/`-joined
/// compositions of these names.
pub const SPAN_NAMES: [&str; 8] = [
    "opt_two.dp",
    "optm.round",
    "optm.search",
    "serve.parse",
    "serve.prepare",
    "serve.serialize",
    "serve.solve",
    "sim.run",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consts_cover_the_arrays() {
        let consts = [
            SERVE_BATCHES,
            SERVE_BATCH_SIZE,
            SERVICE_CACHE_EVICTIONS,
            SERVICE_CACHE_HITS,
            SERVICE_CACHE_MISSES,
            SERVICE_SOLVE_BY_METHOD,
            SERVICE_SOLVE_ERRORS,
            SERVICE_SOLVE_TOTAL,
            NET_CONNECTIONS,
            NET_IDLE_CLOSED,
            NET_OVERLOADED,
            NET_QUOTA_REJECTED,
            NET_SERVED,
            NET_WORKER_PANICS,
            OPTM_ROUNDS,
            OPTM_ROUND_CANDIDATES,
            OPTM_ROUND_SURVIVORS,
            SUBSET_DFS_NODES,
            SIM_STEPS,
            SIM_CONSUMED_UNITS,
            SIM_WASTED_UNITS,
            SIM_WINDOW_UTILIZATION_PPM,
            SIM_STARVED_CORES,
            SIM_BOTTLENECK_RESOURCE,
        ];
        let mut sorted: Vec<&str> = consts.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted,
            METRIC_NAMES.to_vec(),
            "consts and METRIC_NAMES drifted"
        );
    }

    #[test]
    fn span_consts_cover_the_array() {
        let consts = [
            SPAN_SERVE_PARSE,
            SPAN_SERVE_PREPARE,
            SPAN_SERVE_SOLVE,
            SPAN_SERVE_SERIALIZE,
            SPAN_OPTM_SEARCH,
            SPAN_OPTM_ROUND,
            SPAN_OPT_TWO_DP,
            SPAN_SIM_RUN,
        ];
        let mut sorted: Vec<&str> = consts.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, SPAN_NAMES.to_vec(), "consts and SPAN_NAMES drifted");
    }

    #[test]
    fn arrays_are_sorted_and_unique() {
        assert!(METRIC_NAMES.windows(2).all(|w| w[0] < w[1]));
        assert!(SPAN_NAMES.windows(2).all(|w| w[0] < w[1]));
    }
}
