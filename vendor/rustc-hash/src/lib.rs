//! Minimal, workspace-local stand-in for the `rustc-hash` crate.
//!
//! Provides [`FxHasher`] — the non-cryptographic multiply-xor hash used by
//! the Rust compiler — together with the usual [`FxHashMap`] / [`FxHashSet`]
//! aliases.  The solver cores in `cr-algos` key their memo tables by small
//! integer slices; `std`'s default SipHash is DoS-resistant but an order of
//! magnitude slower than Fx on such keys, and the memo maps never face
//! attacker-controlled input.
//!
//! Differences from the real crate: only the 64-bit hashing path is
//! implemented (no `FxHasher32`/`FxHasher64` split, no seeded variants).

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The odd multiplier of the Fx hash (derived from the golden ratio, as in
/// the Firefox/rustc original).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

const ROTATE: u32 = 5;

/// The Fx hasher: per word, rotate-xor-multiply.  Fast on short integer
/// keys, not collision-resistant against adversarial input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_behave_like_std() {
        let mut map: FxHashMap<Vec<u64>, usize> = FxHashMap::default();
        map.insert(vec![1, 2, 3], 10);
        map.insert(vec![4, 5], 20);
        assert_eq!(map.get([1u64, 2, 3].as_slice()), Some(&10));
        assert_eq!(map.len(), 2);

        let mut set: FxHashSet<u64> = FxHashSet::default();
        for x in 0..1000u64 {
            set.insert(x % 100);
        }
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let hash_of = |val: &[u64]| {
            let mut h = FxHasher::default();
            for &w in val {
                h.write_u64(w);
            }
            h.finish()
        };
        assert_eq!(hash_of(&[1, 2, 3]), hash_of(&[1, 2, 3]));
        assert_ne!(hash_of(&[1, 2, 3]), hash_of(&[3, 2, 1]));
        // Low-entropy keys must not collapse onto a few buckets.
        let mut distinct: FxHashSet<u64> = FxHashSet::default();
        for a in 0..32u64 {
            for b in 0..32u64 {
                distinct.insert(hash_of(&[a, b]));
            }
        }
        assert_eq!(distinct.len(), 32 * 32);
    }

    #[test]
    fn byte_writes_cover_partial_words() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        h2.write(&[9]);
        // Same bytes, same chunking behavior for the full prefix word.
        assert_ne!(h1.finish(), 0);
        assert_ne!(h2.finish(), 0);
    }
}
