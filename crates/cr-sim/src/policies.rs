//! Online bandwidth-arbitration policies.
//!
//! The simulator calls a policy once per time step with a snapshot of the
//! cores' states and expects back a bus-share vector.  Policies are *online*:
//! they only see the current state (requirements of the active phases,
//! remaining phase counts), not the future phases — this is the situation a
//! real bus arbiter is in, and it is where the structural insight of the
//! paper (balance the number of remaining jobs) pays off.

use cr_core::Ratio;

/// Snapshot of one core at the start of a time step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreView {
    /// Bandwidth requirement of the active phase (`None` if the core's task
    /// is finished).
    pub active_requirement: Option<Ratio>,
    /// Bus time still needed to finish the active phase, capped at one step's
    /// worth (`requirement · min(remaining length, 1)`).
    pub step_demand: Ratio,
    /// Total bus time still needed to finish the active phase.
    pub remaining_workload: Ratio,
    /// Number of unfinished phases of the task (including the active one).
    pub remaining_phases: usize,
}

impl CoreView {
    /// Whether the core still has work.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active_requirement.is_some()
    }
}

/// Grid used to quantize the shares of the requirement-oblivious policies.
/// Without it, uniform (`1/k` for a varying number `k` of active cores) and
/// demand-proportional splits accumulate unbounded denominators over long
/// runs; snapping down to this grid keeps the exact arithmetic bounded and
/// only ever leaves a sliver of the bus unused.
const SHARE_GRID: i128 = 100_000;

/// An online bus-arbitration policy.
pub trait OnlinePolicy {
    /// Stable policy name for reports.
    fn name(&self) -> &'static str;

    /// Decides the bus shares for this step.  The returned vector must have
    /// one entry per core, entries in `[0, 1]`, and sum to at most 1; the
    /// engine validates this.
    fn allocate(&mut self, cores: &[CoreView]) -> Vec<Ratio>;
}

/// Serve the cores with the most remaining phases first (ties: larger
/// remaining requirement) — the online version of the paper's GreedyBalance.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBalancePolicy;

/// Serve phase `j` on every core before any core moves on to phase `j + 1` —
/// the online version of the paper's RoundRobin.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinPolicy;

/// Give every active core the same share regardless of need.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualSharePolicy;

/// Split the bus proportionally to the active phases' demands.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProportionalSharePolicy;

fn serve_in_priority_order(cores: &[CoreView], order: Vec<usize>) -> Vec<Ratio> {
    let mut shares = vec![Ratio::ZERO; cores.len()];
    let mut left = Ratio::ONE;
    for i in order {
        if left.is_zero() {
            break;
        }
        let give = cores[i].step_demand.min(left);
        shares[i] = give;
        left -= give;
    }
    shares
}

impl OnlinePolicy for GreedyBalancePolicy {
    fn name(&self) -> &'static str {
        "GreedyBalance"
    }

    fn allocate(&mut self, cores: &[CoreView]) -> Vec<Ratio> {
        let mut order: Vec<usize> = (0..cores.len()).filter(|&i| cores[i].is_active()).collect();
        order.sort_by(|&a, &b| {
            cores[b]
                .remaining_phases
                .cmp(&cores[a].remaining_phases)
                .then_with(|| {
                    cores[b]
                        .remaining_workload
                        .cmp(&cores[a].remaining_workload)
                })
                .then_with(|| a.cmp(&b))
        });
        serve_in_priority_order(cores, order)
    }
}

impl OnlinePolicy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "RoundRobin"
    }

    fn allocate(&mut self, cores: &[CoreView]) -> Vec<Ratio> {
        // The current phase index of a core is (total phases) − (remaining);
        // serving only the cores with the *minimal* phase index reproduces
        // the offline algorithm's phase barriers without knowing the future.
        // Because all tasks of one workload have the same phase count in the
        // harness, the minimal completed-phase count identifies the barrier;
        // for heterogeneous phase counts the policy degrades gracefully to a
        // fewest-phases-completed-first rule.
        let active: Vec<usize> = (0..cores.len()).filter(|&i| cores[i].is_active()).collect();
        if active.is_empty() {
            return vec![Ratio::ZERO; cores.len()];
        }
        let max_remaining = active
            .iter()
            .map(|&i| cores[i].remaining_phases)
            .max()
            .unwrap_or(0);
        let participants: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&i| cores[i].remaining_phases == max_remaining)
            .collect();
        serve_in_priority_order(cores, participants)
    }
}

impl OnlinePolicy for EqualSharePolicy {
    fn name(&self) -> &'static str {
        "EqualShare"
    }

    fn allocate(&mut self, cores: &[CoreView]) -> Vec<Ratio> {
        let active: Vec<usize> = (0..cores.len()).filter(|&i| cores[i].is_active()).collect();
        let mut shares = vec![Ratio::ZERO; cores.len()];
        if active.is_empty() {
            return shares;
        }
        let share = Ratio::new(1, active.len() as i128).floor_to_denominator(SHARE_GRID);
        for &i in &active {
            shares[i] = share;
        }
        shares
    }
}

impl OnlinePolicy for ProportionalSharePolicy {
    fn name(&self) -> &'static str {
        "ProportionalShare"
    }

    fn allocate(&mut self, cores: &[CoreView]) -> Vec<Ratio> {
        let total: Ratio = cores.iter().map(|c| c.step_demand).sum();
        let mut shares = vec![Ratio::ZERO; cores.len()];
        if total.is_zero() {
            return shares;
        }
        for (i, core) in cores.iter().enumerate() {
            shares[i] = if total <= Ratio::ONE {
                core.step_demand
            } else {
                (core.step_demand / total).floor_to_denominator(SHARE_GRID)
            };
        }
        shares
    }
}

/// The full set of built-in policies, boxed for sweeps.
#[must_use]
pub fn standard_policies() -> Vec<Box<dyn OnlinePolicy>> {
    vec![
        Box::new(GreedyBalancePolicy),
        Box::new(RoundRobinPolicy),
        Box::new(EqualSharePolicy),
        Box::new(ProportionalSharePolicy),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::ratio;

    fn view(req: Option<(i64, i64)>, remaining: usize) -> CoreView {
        match req {
            Some((n, d)) => CoreView {
                active_requirement: Some(ratio(n as i128, d as i128)),
                step_demand: ratio(n as i128, d as i128),
                remaining_workload: ratio(n as i128, d as i128),
                remaining_phases: remaining,
            },
            None => CoreView {
                active_requirement: None,
                step_demand: Ratio::ZERO,
                remaining_workload: Ratio::ZERO,
                remaining_phases: 0,
            },
        }
    }

    #[test]
    fn greedy_balance_prefers_longer_chains() {
        let cores = vec![view(Some((1, 2)), 1), view(Some((1, 2)), 3)];
        let shares = GreedyBalancePolicy.allocate(&cores);
        assert_eq!(shares[1], ratio(1, 2));
        assert_eq!(shares[0], ratio(1, 2));
        // With scarce resource the longer chain wins entirely.
        let cores = vec![view(Some((9, 10)), 1), view(Some((9, 10)), 3)];
        let shares = GreedyBalancePolicy.allocate(&cores);
        assert_eq!(shares[1], ratio(9, 10));
        assert_eq!(shares[0], ratio(1, 10));
    }

    #[test]
    fn round_robin_serves_only_the_current_phase_barrier() {
        // Core 0 has already finished one phase more than core 1.
        let cores = vec![view(Some((1, 2)), 1), view(Some((1, 2)), 2)];
        let shares = RoundRobinPolicy.allocate(&cores);
        assert_eq!(shares[1], ratio(1, 2));
        assert_eq!(shares[0], Ratio::ZERO, "cores ahead of the barrier wait");
    }

    #[test]
    fn equal_share_ignores_demand() {
        let cores = vec![
            view(Some((1, 10)), 1),
            view(Some((9, 10)), 1),
            view(None, 0),
        ];
        let shares = EqualSharePolicy.allocate(&cores);
        assert_eq!(shares[0], ratio(1, 2));
        assert_eq!(shares[1], ratio(1, 2));
        assert_eq!(shares[2], Ratio::ZERO);
    }

    #[test]
    fn proportional_share_scales_to_capacity() {
        let cores = vec![view(Some((3, 4)), 1), view(Some((3, 4)), 1)];
        let shares = ProportionalSharePolicy.allocate(&cores);
        assert_eq!(shares[0], ratio(1, 2));
        assert_eq!(shares[1], ratio(1, 2));
        // Under-subscribed: demands are granted exactly.
        let cores = vec![view(Some((1, 4)), 1), view(Some((1, 2)), 1)];
        let shares = ProportionalSharePolicy.allocate(&cores);
        assert_eq!(shares[0], ratio(1, 4));
        assert_eq!(shares[1], ratio(1, 2));
    }

    #[test]
    fn all_policies_return_feasible_vectors() {
        let cores = vec![
            view(Some((9, 10)), 4),
            view(Some((7, 10)), 2),
            view(Some((2, 10)), 6),
            view(None, 0),
        ];
        for mut policy in standard_policies() {
            let shares = policy.allocate(&cores);
            assert_eq!(shares.len(), cores.len());
            let total: Ratio = shares.iter().sum();
            assert!(total <= Ratio::ONE, "{} overuses the bus", policy.name());
            assert!(shares.iter().all(Ratio::in_unit_interval));
        }
    }
}
