//! The single entry point for full paper-table reproduction.
//!
//! Builds the fig1–fig5 tables plus the random-grid sweeps as one big
//! experiment grid (via the shared builders in `cr_bench::grids`), fans it
//! out with the rayon [`Runner`], and writes
//!
//! * `experiments.json` — every measured cell, deterministic and
//!   byte-identical across runs with the same `--seed`;
//! * `experiments.md` — the same tables as GitHub-flavoured markdown;
//! * `BENCH_pipeline.json` — wall-clock timings of the parallel run (the
//!   perf baseline future PRs compare against).  Besides the eight report
//!   tables this also times *timing-only* sweeps — the heuristic line-up,
//!   the many-core simulator on the scaled engine, the OPT(m)
//!   thread-scaling record (the rayon-parallel round expansion at pinned
//!   worker counts), batch-service throughput, socket serving latency and
//!   the multi-resource overhead curve over `k ∈ {1, 2, 4}` layers — which
//!   appear in `BENCH_pipeline.json` but never in `experiments.json`.
//!
//! Usage: `cargo run --release -p cr-bench --bin experiments --
//! [--seed N] [--out-dir DIR] [--reduced]`
//!
//! `--reduced` shrinks every sweep (fewer repetitions, shorter fig3 chains)
//! while keeping the same table line-up; CI's perf-smoke job runs it to get
//! a representative timing artifact per PR without paying for the full
//! grid, and asserts the cell counts of every table — including the timing
//! sweeps — against the committed baseline.

#![forbid(unsafe_code)]

use cr_algos::opt_m_makespan;
use cr_algos::solver::{SolveRequest, POLY_METHODS};
use cr_bench::grids;
use cr_bench::pipeline::{shared_service, Cell, ExperimentReport, Runner};
use cr_core::Instance;
use cr_instances::{
    generate_workload, random_multi_unit_instance, random_unit_instance,
    rotating_bottleneck_instance, wide_oversubscribed_instance, RandomConfig, RequirementProfile,
    TaskMix, WorkloadConfig,
};
use cr_sim::ONLINE_METHODS;
use rayon::prelude::*;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    seed: u64,
    out_dir: PathBuf,
    reduced: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 0xC0FF_EE00,
        out_dir: PathBuf::from("."),
        reduced: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--seed" => {
                let value = iter.next().expect("--seed requires a value");
                args.seed = parse_seed(&value);
            }
            "--out-dir" => {
                args.out_dir = PathBuf::from(iter.next().expect("--out-dir requires a value"));
            }
            "--reduced" => args.reduced = true,
            "--help" | "-h" => {
                println!("usage: experiments [--seed N] [--out-dir DIR] [--reduced]");
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}` (try --help)"),
        }
    }
    args
}

fn parse_seed(text: &str) -> u64 {
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("invalid hex seed")
    } else {
        text.parse().expect("invalid seed")
    }
}

fn main() {
    let args = parse_args();
    let runner = Runner::new(args.seed);
    // The reduced grid keeps all eight tables (so timing artifacts stay
    // comparable shape-wise) but sweeps fewer repetitions / sizes.
    let (fig3_sizes, exact_reps, large_reps, sized_reps) = if args.reduced {
        (&grids::FIG3_SIZES[..5], 5, 5, 2)
    } else {
        (&grids::FIG3_SIZES[..], 25, 25, 5)
    };
    let grids: Vec<(&str, Vec<Cell>)> = vec![
        (
            "Figure 1 running example (vs. exact optimum)",
            grids::fig1_cells(),
        ),
        ("Figure 2 nested-schedule example", grids::fig2_cells()),
        (
            "Figure 3 adversarial family (Theorem 3)",
            grids::fig3_cells(fig3_sizes),
        ),
        (
            "Figure 4 Partition reduction (Theorem 4)",
            grids::fig4_cells(&grids::fig4_default_cases()),
        ),
        (
            "Figure 5 block construction (Theorem 8)",
            grids::fig5_cells(1000),
        ),
        (
            "Random grid vs. exact optimum (Theorem 7)",
            grids::random_exact_cells(
                exact_reps,
                &[RequirementProfile::Uniform, RequirementProfile::Light],
            ),
        ),
        (
            "Random grid vs. best lower bound",
            grids::random_large_cells(large_reps),
        ),
        (
            "Arbitrary-size grid (Section 9)",
            grids::sized_cells(sized_reps),
        ),
    ];
    let total_cells: usize = grids.iter().map(|(_, cells)| cells.len()).sum();
    println!(
        "experiments — {total_cells} cells across {} tables on {} threads (seed {:#x})",
        grids.len(),
        rayon::current_num_threads(),
        args.seed
    );

    let mut tables = Vec::new();
    let mut timings = Vec::new();
    let run_start = Instant::now();
    for (title, cells) in &grids {
        let start = Instant::now();
        let (table, max_cell_ms) = runner.run_table_timed(*title, cells);
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "  {title:<46} {:>5} cells  {elapsed_ms:>9.1} ms  (max cell {max_cell_ms:>7.1} ms)",
            cells.len()
        );
        timings.push(TableTiming {
            title: (*title).to_string(),
            cells: cells.len(),
            wall_ms: elapsed_ms,
            max_cell_ms,
            extra: Vec::new(),
        });
        tables.push(table);
    }

    // Timing-only sweeps of the scaled scheduling/simulation layer.  They
    // contribute tables to BENCH_pipeline.json (so the perf baseline covers
    // the heuristic and simulator hot paths) but no rows to
    // experiments.json, whose content must stay a pure function of the seed.
    let mut timing_cells = 0usize;
    for (title, cells) in [
        heuristic_timing_cells(args.reduced),
        simulator_timing_cells(args.reduced),
    ] {
        timing_cells += cells.len();
        let timing = run_timing_table(title, &cells);
        println!(
            "  {:<46} {:>5} cells  {:>9.1} ms  (max cell {:>7.1} ms)",
            timing.title, timing.cells, timing.wall_ms, timing.max_cell_ms
        );
        timings.push(timing);
    }
    let scaling = run_thread_scaling_table(args.reduced);
    println!(
        "  {:<46} {:>5} cells  {:>9.1} ms  (max cell {:>7.1} ms)",
        scaling.title, scaling.cells, scaling.wall_ms, scaling.max_cell_ms
    );
    timing_cells += scaling.cells;
    timings.push(scaling);
    let batch = run_batch_throughput_table(args.reduced);
    println!(
        "  {:<46} {:>5} cells  {:>9.1} ms  (max cell {:>7.1} ms)",
        batch.title, batch.cells, batch.wall_ms, batch.max_cell_ms
    );
    timing_cells += batch.cells;
    timings.push(batch);
    let serving = run_socket_serving_table(args.reduced);
    println!(
        "  {:<46} {:>5} cells  {:>9.1} ms  (max cell {:>7.1} ms)",
        serving.title, serving.cells, serving.wall_ms, serving.max_cell_ms
    );
    timing_cells += serving.cells;
    timings.push(serving);
    let multi = run_multi_resource_table(args.reduced);
    println!(
        "  {:<46} {:>5} cells  {:>9.1} ms  (max cell {:>7.1} ms)",
        multi.title, multi.cells, multi.wall_ms, multi.max_cell_ms
    );
    timing_cells += multi.cells;
    timings.push(multi);
    let obs = run_observability_overhead_table(args.reduced);
    println!(
        "  {:<46} {:>5} cells  {:>9.1} ms  (max cell {:>7.1} ms)",
        obs.title, obs.cells, obs.wall_ms, obs.max_cell_ms
    );
    timing_cells += obs.cells;
    timings.push(obs);
    let total_cells = total_cells + timing_cells;
    let total_ms = run_start.elapsed().as_secs_f64() * 1e3;

    // Sanity assertions mirroring the paper's claims before anything is
    // persisted.
    for table in &tables {
        for cell in &table.results {
            assert!(
                cell.makespan >= cell.reference || !cell.reference_is_optimal,
                "a measured makespan beat a proven optimum: {cell:?}"
            );
        }
    }

    let report = ExperimentReport {
        base_seed: args.seed,
        tables,
    };
    std::fs::create_dir_all(&args.out_dir).expect("create output directory");
    let json_path = args.out_dir.join("experiments.json");
    let md_path = args.out_dir.join("experiments.md");
    let bench_path = args.out_dir.join("BENCH_pipeline.json");
    std::fs::write(&json_path, report.to_json()).expect("write experiments.json");
    std::fs::write(&md_path, report.to_markdown()).expect("write experiments.md");
    std::fs::write(
        &bench_path,
        timing_json(&timings, total_ms, total_cells, args.reduced),
    )
    .expect("write BENCH_pipeline.json");

    println!("\n{}", report.to_markdown());
    println!(
        "wrote {} / {} / {}  ({total_cells} cells in {total_ms:.1} ms total)",
        json_path.display(),
        md_path.display(),
        bench_path.display()
    );
}

/// One deferred unit of timing-only work: a label plus the closure whose
/// wall time is measured (the returned makespan is black-boxed so the work
/// cannot be optimized away).
type TimingCell = (String, Box<dyn Fn() -> usize + Send + Sync>);

/// A timing cell solving one method over one instance through the shared
/// solver service (the same code path `cr-serve` exercises).
fn service_cell(label: String, method: &'static str, instance: Instance) -> TimingCell {
    (
        label,
        Box::new(move || {
            shared_service()
                .solve(&SolveRequest::new(method, instance.clone()))
                .expect("timing solve succeeds")
                .makespan
                .expect("timing methods report makespans")
        }),
    )
}

/// The heuristic line-up on the scaled engine: every polynomial method of
/// the registry over random uniform instances (the post-ISSUE-3 hot path of
/// the random sweeps).
fn heuristic_timing_cells(reduced: bool) -> (&'static str, Vec<TimingCell>) {
    let reps: u64 = if reduced { 1 } else { 3 };
    let mut cells: Vec<TimingCell> = Vec::new();
    for (m, n) in [(8usize, 48usize), (16, 64)] {
        for rep in 0..reps {
            let instance = random_unit_instance(&RandomConfig::uniform(m, n), 4000 + rep);
            for method in POLY_METHODS {
                cells.push(service_cell(
                    format!("{method} m={m} n={n} rep={rep}"),
                    method,
                    instance.clone(),
                ));
            }
        }
    }
    ("Heuristic line-up timing (scaled engine)", cells)
}

/// The many-core simulator on the scaled engine: every online `sim:` method
/// of the registry over synthetic workloads (the E10 sweep's hot path).
fn simulator_timing_cells(reduced: bool) -> (&'static str, Vec<TimingCell>) {
    let core_counts: &[usize] = if reduced { &[16] } else { &[16, 64] };
    let mut cells: Vec<TimingCell> = Vec::new();
    for mix in [TaskMix::IoBound, TaskMix::Mixed] {
        for &cores in core_counts {
            let cfg = WorkloadConfig {
                cores,
                phases_per_task: 16,
                mix,
                denominator: 100,
                unit_phases: true,
            };
            let workload = generate_workload(&cfg, 8000 + cores as u64);
            for method in ONLINE_METHODS {
                cells.push(service_cell(
                    format!("{method} {mix:?} cores={cores}"),
                    method,
                    workload.clone(),
                ));
            }
        }
    }
    ("Many-core simulator timing (scaled engine)", cells)
}

/// The batch solver service throughput record: one cell per batch size,
/// each solving a mixed heuristic + exact batch through
/// `SolverService::solve_batch` and reporting instances/sec (the
/// `throughput` rows of `BENCH_pipeline.json`).
fn run_batch_throughput_table(reduced: bool) -> TableTiming {
    const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];
    let (m, n) = if reduced { (4usize, 12usize) } else { (8, 32) };
    let service = shared_service();
    let start = Instant::now();
    let mut per_cell_ms = Vec::with_capacity(BATCH_SIZES.len());
    let mut throughput = Vec::with_capacity(BATCH_SIZES.len());
    for &batch_size in &BATCH_SIZES {
        // A fresh instance per slot so the cell measures conversion + solve,
        // not the warm cache; methods rotate heuristics with one exact
        // OPT(m) per 8 requests (a realistic mixed serving batch).
        let requests: Vec<SolveRequest> = (0..batch_size)
            .map(|slot| {
                let (method, instance) = if slot % 8 == 7 {
                    (
                        "OptM",
                        random_unit_instance(
                            &RandomConfig::uniform(3, 3),
                            7000 + batch_size as u64 * 100 + slot as u64,
                        ),
                    )
                } else {
                    (
                        POLY_METHODS[slot % POLY_METHODS.len()],
                        random_unit_instance(
                            &RandomConfig::uniform(m, n),
                            6000 + batch_size as u64 * 100 + slot as u64,
                        ),
                    )
                };
                SolveRequest::new(method, instance)
            })
            .collect();
        let cell_start = Instant::now();
        let results = service.solve_batch(&requests);
        let elapsed = cell_start.elapsed().as_secs_f64();
        assert!(
            results.iter().all(Result::is_ok),
            "throughput batch must succeed"
        );
        black_box(results);
        per_cell_ms.push(elapsed * 1e3);
        throughput.push((batch_size, batch_size as f64 / elapsed.max(1e-9)));
    }
    let round1 = |x: f64| (x * 10.0).round() / 10.0;
    TableTiming {
        title: "Batch solver service throughput (cr-service)".to_string(),
        cells: BATCH_SIZES.len(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        max_cell_ms: per_cell_ms.iter().fold(0.0f64, |a, &b| a.max(b)),
        extra: vec![(
            "throughput".to_string(),
            serde::Value::Array(
                throughput
                    .into_iter()
                    .map(|(batch, per_sec)| {
                        serde::Value::Object(vec![
                            (
                                "batch".to_string(),
                                serde::Value::Number(serde::Number::Int(batch as i128)),
                            ),
                            (
                                "instances_per_sec".to_string(),
                                serde::Value::Number(serde::Number::Float(round1(per_sec))),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )],
    }
}

/// Observability overhead: the full mixed batch of the throughput table,
/// solved repeatedly with recording *enabled* versus *runtime-disabled*
/// (the registry kill switch is the in-process stand-in for the `obs-off`
/// compile, which CI builds separately).  The conversion cache is warmed
/// before either arm so both measure solve + recording, not first-touch
/// conversion.  The `overhead` extra row carries both wall times and the
/// enabled/disabled ratio — the regression budget for the cr-obs
/// instrumentation on the hot solve path.
fn run_observability_overhead_table(reduced: bool) -> TableTiming {
    let (m, n) = if reduced { (4usize, 12usize) } else { (8, 32) };
    let batch_size = if reduced { 16 } else { 64 };
    let reps = if reduced { 2 } else { 5 };
    let service = shared_service();
    let requests: Vec<SolveRequest> = (0..batch_size)
        .map(|slot| {
            let (method, instance) = if slot % 8 == 7 {
                (
                    "OptM",
                    random_unit_instance(&RandomConfig::uniform(3, 3), 8000 + slot as u64),
                )
            } else {
                (
                    POLY_METHODS[slot % POLY_METHODS.len()],
                    random_unit_instance(&RandomConfig::uniform(m, n), 8100 + slot as u64),
                )
            };
            SolveRequest::new(method, instance)
        })
        .collect();
    let start = Instant::now();
    // Warm-up: both arms run against a hot conversion cache.
    black_box(service.solve_batch(&requests));
    let time_arm = |label: &str| -> f64 {
        let arm = Instant::now();
        for _ in 0..reps {
            let results = service.solve_batch(&requests);
            assert!(
                results.iter().all(Result::is_ok),
                "{label} overhead batch must succeed"
            );
            black_box(results);
        }
        arm.elapsed().as_secs_f64() * 1e3
    };
    let registry = cr_obs::Registry::global();
    let instrumented_ms = time_arm("instrumented");
    registry.set_enabled(false);
    let disabled_ms = time_arm("disabled");
    registry.set_enabled(true);
    let ratio = instrumented_ms / disabled_ms.max(1e-9);
    let round3 = |x: f64| (x * 1e3).round() / 1e3;
    TableTiming {
        title: "Observability overhead (cr-obs)".to_string(),
        cells: 2,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        max_cell_ms: instrumented_ms.max(disabled_ms),
        extra: vec![(
            "overhead".to_string(),
            serde::Value::Array(vec![serde::Value::Object(vec![
                (
                    "instrumented_ms".to_string(),
                    serde::Value::Number(serde::Number::Float(round3(instrumented_ms))),
                ),
                (
                    "disabled_ms".to_string(),
                    serde::Value::Number(serde::Number::Float(round3(disabled_ms))),
                ),
                (
                    "ratio".to_string(),
                    serde::Value::Number(serde::Number::Float(round3(ratio))),
                ),
            ])]),
        )],
    }
}

/// The socket serving tier under sustained mixed load: one cell per client
/// count, each driving Poisson-paced heuristic + exact + simulator traffic
/// through a real TCP server (`cr_service::net`) via the `cr-loadgen` core,
/// recording p50/p95/p99 request latencies and aggregate throughput (the
/// `latency` rows of `BENCH_pipeline.json`).  One server — and therefore
/// one warm conversion cache — serves all cells, mirroring production.
/// A fifth cell measures deadline enforcement: over-deadline pathological
/// solves must answer `deadline_exceeded` with p99 wall latency within
/// the deadline plus one cancellation check interval.
fn run_socket_serving_table(reduced: bool) -> TableTiming {
    const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];
    let requests_per_client = if reduced { 8 } else { 32 };
    let service = std::sync::Arc::new(cr_service::SolverService::with_standard_registry());
    let handle = cr_service::net::Server::spawn(
        service,
        "127.0.0.1:0",
        cr_service::net::ServerConfig::default(),
    )
    .expect("spawn serving-latency socket server");
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let float = |x: f64| serde::Value::Number(serde::Number::Float(round2(x)));
    let start = Instant::now();
    let mut per_cell_ms = Vec::with_capacity(CLIENT_COUNTS.len());
    let mut latency_rows = Vec::with_capacity(CLIENT_COUNTS.len());
    for &clients in &CLIENT_COUNTS {
        let config = cr_bench::loadgen::LoadConfig {
            clients,
            requests_per_client,
            rate_hz: 200.0,
            seed: 0x10AD_6E17 + clients as u64,
            // Single-resource traffic keeps these latency cells comparable
            // release to release; multi-resource cost has its own table.
            multi_every: 0,
        };
        let report = cr_bench::loadgen::run(handle.addr(), &config);
        assert_eq!(
            report.answered(),
            clients * requests_per_client,
            "every load request must be answered"
        );
        assert_eq!(report.rejected, 0, "sustained load must not be shed");
        assert_eq!(
            report.retry_exhausted, 0,
            "no request may exhaust its retry budget under sustained load"
        );
        per_cell_ms.push(report.wall_secs * 1e3);
        latency_rows.push(serde::Value::Object(vec![
            (
                "clients".to_string(),
                serde::Value::Number(serde::Number::Int(clients as i128)),
            ),
            ("p50_ms".to_string(), float(report.p50_ms)),
            ("p95_ms".to_string(), float(report.p95_ms)),
            ("p99_ms".to_string(), float(report.p99_ms)),
            (
                "requests_per_sec".to_string(),
                float(report.requests_per_sec),
            ),
        ]));
    }
    // Deadline-enforcement cell: each over-deadline pathological request
    // is its own flush, so every solve has an observable wall latency
    // bounded by its deadline rather than by the brute-force search it
    // would otherwise run for minutes.
    const DEADLINE_MS: u64 = 100;
    let deadline_requests = if reduced { 4 } else { 8 };
    let cell_start = Instant::now();
    let mut deadline_lats = Vec::with_capacity(deadline_requests);
    {
        use std::io::{BufRead, BufReader, Write};
        let stream = std::net::TcpStream::connect(handle.addr())
            .expect("connect deadline-enforcement client");
        let mut writer = stream.try_clone().expect("clone deadline stream");
        let mut reader = BufReader::new(stream);
        let line = cr_bench::chaos::pathological_line(DEADLINE_MS);
        for _ in 0..deadline_requests {
            let sent = Instant::now();
            writeln!(writer, "{line}\n").expect("send deadline request");
            writer.flush().expect("flush deadline request");
            let mut response = String::new();
            reader
                .read_line(&mut response)
                .expect("read deadline response");
            deadline_lats.push(sent.elapsed().as_secs_f64() * 1e3);
            assert!(
                response.contains("\"kind\":\"deadline_exceeded\""),
                "over-deadline request must answer deadline_exceeded: {response}"
            );
        }
    }
    deadline_lats.sort_by(f64::total_cmp);
    // Nearest-rank p99 (the max at this sample count): the enforcement
    // contract is the deadline plus one cancellation check interval.
    let deadline_p99 = deadline_lats.last().copied().unwrap_or(0.0);
    let bound_ms = (DEADLINE_MS + cr_core::cancel::CHECK_INTERVAL_MS) as f64;
    assert!(
        deadline_p99 <= bound_ms,
        "deadline enforcement p99 {deadline_p99:.1} ms exceeds {bound_ms} ms \
         (deadline {DEADLINE_MS} ms + one check interval)"
    );
    per_cell_ms.push(cell_start.elapsed().as_secs_f64() * 1e3);
    latency_rows.push(serde::Value::Object(vec![
        (
            "deadline_ms".to_string(),
            serde::Value::Number(serde::Number::Int(DEADLINE_MS as i128)),
        ),
        (
            "requests".to_string(),
            serde::Value::Number(serde::Number::Int(deadline_requests as i128)),
        ),
        ("p99_ms".to_string(), float(deadline_p99)),
    ]));
    handle.shutdown();
    handle.join();
    TableTiming {
        title: "Socket serving latency + throughput (cr-loadgen)".to_string(),
        cells: CLIENT_COUNTS.len() + 1,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        max_cell_ms: per_cell_ms.iter().fold(0.0f64, |a, &b| a.max(b)),
        extra: vec![("latency".to_string(), serde::Value::Array(latency_rows))],
    }
}

/// The multi-resource overhead record: the polynomial heuristic line-up
/// over random unit grids carrying `k ∈ {1, 2, 4}` resource layers plus one
/// rotating-bottleneck adversarial instance per `k` — the cost of the
/// vector resource model as the layer count grows (the `overhead` rows of
/// `BENCH_pipeline.json`).  The `k = 1` cell routes through the untouched
/// scalar path, so it doubles as the no-regression anchor the `bench_exact`
/// k=1 comparison also pins.
fn run_multi_resource_table(reduced: bool) -> TableTiming {
    const RESOURCE_COUNTS: [usize; 3] = [1, 2, 4];
    let reps: u64 = if reduced { 1 } else { 3 };
    let (m, n) = if reduced { (4usize, 12usize) } else { (8, 32) };
    let service = shared_service();
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let start = Instant::now();
    let mut per_cell_ms = Vec::with_capacity(RESOURCE_COUNTS.len());
    let mut overhead_rows = Vec::with_capacity(RESOURCE_COUNTS.len());
    for &resources in &RESOURCE_COUNTS {
        // Same shapes and seeds across cells: only the layer count varies,
        // so the curve isolates the per-resource cost.
        let mut instances: Vec<Instance> = (0..reps)
            .map(|rep| {
                random_multi_unit_instance(&RandomConfig::uniform(m, n), resources, 9000 + rep)
            })
            .collect();
        instances.push(rotating_bottleneck_instance(4, 6, resources));
        let mut solves = 0usize;
        let cell_start = Instant::now();
        for instance in &instances {
            for method in POLY_METHODS {
                let outcome = service
                    .solve(&SolveRequest::new(method, instance.clone()))
                    .expect("multi-resource heuristic solve succeeds");
                black_box(outcome.makespan.expect("heuristics report makespans"));
                solves += 1;
            }
        }
        let elapsed_ms = cell_start.elapsed().as_secs_f64() * 1e3;
        per_cell_ms.push(elapsed_ms);
        overhead_rows.push(serde::Value::Object(vec![
            (
                "resources".to_string(),
                serde::Value::Number(serde::Number::Int(resources as i128)),
            ),
            (
                "solves".to_string(),
                serde::Value::Number(serde::Number::Int(solves as i128)),
            ),
            (
                "wall_ms".to_string(),
                serde::Value::Number(serde::Number::Float(round2(elapsed_ms))),
            ),
        ]));
    }
    TableTiming {
        title: "Multi-resource overhead vs k (heuristics)".to_string(),
        cells: RESOURCE_COUNTS.len(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        max_cell_ms: per_cell_ms.iter().fold(0.0f64, |a, &b| a.max(b)),
        extra: vec![("overhead".to_string(), serde::Value::Array(overhead_rows))],
    }
}

/// Times the parallel OPT(m) round expansion at pinned rayon worker counts
/// over a fixed batch of large oversubscribed instances — the ISSUE-4
/// thread-scaling record (one cell per worker count).  The engine's round
/// fan-out reads `RAYON_NUM_THREADS` per expansion, so the sweep pins the
/// variable for each cell and restores it afterwards; it must therefore run
/// on the main thread between tables, never inside a parallel section.
/// Parallel runs are byte-identical to serial ones, which the summed
/// makespans double-check across worker counts.
fn run_thread_scaling_table(reduced: bool) -> TableTiming {
    const THREADS: [usize; 4] = [1, 2, 4, 8];
    let reps: u64 = if reduced { 1 } else { 3 };
    let wide_m = if reduced { 16 } else { 32 };
    // Dense uniform searches (rounds with many surviving configurations)
    // plus one wide-active-set instance; both oversubscribe the resource.
    let mut instances: Vec<Instance> = (0..reps)
        .map(|rep| random_unit_instance(&RandomConfig::uniform(4, 3), 1000 + rep))
        .collect();
    instances.push(wide_oversubscribed_instance(wide_m, 4, 3, 12, 90));

    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    let start = Instant::now();
    let mut per_cell_ms = Vec::with_capacity(THREADS.len());
    let mut reference: Option<usize> = None;
    for &threads in &THREADS {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        // Inside a rayon worker the shim reports a parallelism of 1 and the
        // pin would be silently ignored — every cell would measure serial
        // execution and record a flat, meaningless scaling curve.
        assert_eq!(
            rayon::current_num_threads(),
            threads,
            "thread-scaling sweep must run outside any rayon worker"
        );
        let cell_start = Instant::now();
        let sum: usize = instances.iter().map(opt_m_makespan).sum();
        per_cell_ms.push(cell_start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            *reference.get_or_insert(sum),
            sum,
            "worker count changed an optimal makespan"
        );
        black_box(sum);
    }
    match saved {
        Some(value) => std::env::set_var("RAYON_NUM_THREADS", value),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    TableTiming {
        title: "OPT(m) thread scaling (parallel rounds)".to_string(),
        cells: THREADS.len(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        max_cell_ms: per_cell_ms.iter().fold(0.0f64, |a, &b| a.max(b)),
        extra: Vec::new(),
    }
}

/// Fans a timing-only sweep out with rayon and records its wall time plus
/// the slowest single cell, mirroring `Runner::run_with_timings`.
fn run_timing_table(title: &'static str, cells: &[TimingCell]) -> TableTiming {
    let start = Instant::now();
    let per_cell_ms: Vec<f64> = cells
        .par_iter()
        .map(|(_, work)| {
            let cell_start = Instant::now();
            black_box(work());
            cell_start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    TableTiming {
        title: title.to_string(),
        cells: cells.len(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        max_cell_ms: per_cell_ms.iter().fold(0.0f64, |a, &b| a.max(b)),
        extra: Vec::new(),
    }
}

/// One table's timing record for `BENCH_pipeline.json`.
struct TableTiming {
    title: String,
    cells: usize,
    wall_ms: f64,
    /// Wall time of the slowest single unit of work (one memoized reference
    /// evaluation or one measured cell) — the table's critical cell.
    max_cell_ms: f64,
    /// Additional table-specific JSON entries (e.g. the batch-throughput
    /// curve); appended verbatim to the table object.
    extra: Vec<(String, serde::Value)>,
}

/// Renders the timing baseline (schema: see BENCH_pipeline.json at the repo
/// root).  `threads` is the rayon worker count actually used by this run's
/// parallel fan-out; `reduced` marks a `--reduced` sweep so a shrunken grid
/// can never masquerade as the committed full-grid baseline.
fn timing_json(
    timings: &[TableTiming],
    total_ms: f64,
    total_cells: usize,
    reduced: bool,
) -> String {
    let round1 = |x: f64| (x * 10.0).round() / 10.0;
    let phases: Vec<serde::Value> = timings
        .iter()
        .map(|t| {
            let mut entries = vec![
                ("table".to_string(), serde::Value::String(t.title.clone())),
                (
                    "cells".to_string(),
                    serde::Value::Number(serde::Number::Int(t.cells as i128)),
                ),
                (
                    "wall_ms".to_string(),
                    serde::Value::Number(serde::Number::Float(round1(t.wall_ms))),
                ),
                (
                    "max_cell_ms".to_string(),
                    serde::Value::Number(serde::Number::Float(round1(t.max_cell_ms))),
                ),
            ];
            entries.extend(t.extra.iter().cloned());
            serde::Value::Object(entries)
        })
        .collect();
    let root = serde::Value::Object(vec![
        (
            "benchmark".to_string(),
            serde::Value::String("experiments pipeline".to_string()),
        ),
        ("reduced".to_string(), serde::Value::Bool(reduced)),
        (
            "threads".to_string(),
            serde::Value::Number(serde::Number::Int(rayon::current_num_threads() as i128)),
        ),
        (
            "total_cells".to_string(),
            serde::Value::Number(serde::Number::Int(total_cells as i128)),
        ),
        (
            "total_wall_ms".to_string(),
            serde::Value::Number(serde::Number::Float((total_ms * 10.0).round() / 10.0)),
        ),
        ("tables".to_string(), serde::Value::Array(phases)),
    ]);
    serde_json::to_string_pretty(&root).expect("timing serialization is infallible")
}
