//! Online bandwidth-arbitration policies.
//!
//! The simulator calls a policy once per time step with a snapshot of the
//! cores' states and expects back a bus-share vector.  Policies are *online*:
//! they only see the current state (requirements of the active phases,
//! remaining phase counts), not the future phases — this is the situation a
//! real bus arbiter is in, and it is where the structural insight of the
//! paper (balance the number of remaining jobs) pays off.
//!
//! All quantities are integer **units** on the workload's unit grid: the
//! engine tells the policy the pool `capacity` (the number of units one time
//! step hands out — the grid denominator `D` of the underlying
//! [`ScaledScheduleBuilder`](cr_core::ScaledScheduleBuilder)), and the policy
//! returns one unit share per core.  This is exactly the position of a
//! hardware arbiter distributing integer bandwidth credits, and it makes
//! every split exact: the dividing policies use
//! [`largest_remainder_split`], so shares sum to exactly one pool and no
//! positive demand is ever quantized to zero while units remain.  (The
//! previous `Ratio`-based policies floored shares onto a fixed `1/100 000`
//! grid, which could starve a core with a small positive demand.)

use cr_core::scaled::largest_remainder_split;

/// Snapshot of one core at the start of a time step.  All resource
/// quantities are units on the simulation's grid (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreView {
    /// Bandwidth requirement of the active phase in units (`None` if the
    /// core's task is finished).
    pub active_requirement: Option<u64>,
    /// Bus units still usable by the active phase this step, capped at one
    /// step's worth (`requirement · min(remaining length, 1)` in units).
    pub step_demand: u64,
    /// Total bus units still needed to finish the active phase.
    pub remaining_workload: u64,
    /// Number of unfinished phases of the task (including the active one).
    pub remaining_phases: usize,
}

impl CoreView {
    /// Whether the core still has work.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active_requirement.is_some()
    }
}

/// Snapshot of one core at the start of a multi-resource time step: the
/// `k`-resource twin of [`CoreView`], with one unit quantity per resource
/// layer.  Each resource lives on its own grid, so the entries of one
/// vector are **not** comparable across resources — only against that
/// resource's capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiCoreView {
    /// Per-resource requirement caps of the active phase in units (`None`
    /// if the core's task is finished).
    pub active_requirement: Option<Vec<u64>>,
    /// Per-resource units still usable by the active phase this step.
    pub step_demand: Vec<u64>,
    /// Per-resource units still needed to finish the active phase.
    pub remaining_workload: Vec<u64>,
    /// Number of unfinished phases of the task (including the active one).
    pub remaining_phases: usize,
}

impl MultiCoreView {
    /// Whether the core still has work.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active_requirement.is_some()
    }

    /// Number of resource layers in this view.
    #[must_use]
    pub fn resources(&self) -> usize {
        self.step_demand.len()
    }

    /// A finished/invisible core over `resources` layers (used by arrival
    /// gating and tests).
    #[must_use]
    pub fn idle(resources: usize) -> Self {
        MultiCoreView {
            active_requirement: None,
            step_demand: vec![0; resources],
            remaining_workload: vec![0; resources],
            remaining_phases: 0,
        }
    }

    /// Projects the view onto one resource layer, producing the scalar view
    /// a single-resource policy understands.
    #[must_use]
    pub fn project(&self, resource: usize) -> CoreView {
        CoreView {
            active_requirement: self.active_requirement.as_ref().map(|reqs| reqs[resource]),
            step_demand: self.step_demand[resource],
            remaining_workload: self.remaining_workload[resource],
            remaining_phases: self.remaining_phases,
        }
    }
}

/// An online bus-arbitration policy.
pub trait OnlinePolicy {
    /// Stable policy name for reports.
    fn name(&self) -> &'static str;

    /// Decides the bus shares for this step, in units.  The returned vector
    /// must have one entry per core, entries in `[0, capacity]`, and sum to
    /// at most `capacity`; the engine validates this.
    fn allocate(&mut self, capacity: u64, cores: &[CoreView]) -> Vec<u64>;

    /// Decides the shares of every resource for this step:
    /// `result[i][r]` is core `i`'s share of resource `r`, in that
    /// resource's units.  Each row must have one entry per resource, every
    /// entry in `[0, capacities[r]]`, and each resource's column sum at most
    /// `capacities[r]`.
    ///
    /// The default implementation arbitrates every resource independently
    /// with the scalar [`allocate`](Self::allocate) rule on the
    /// [projected](MultiCoreView::project) views — the natural lift of each
    /// built-in policy, and exactly the scalar behavior when `k == 1`.
    /// Stateful policies whose `allocate` advances per *step* (not per
    /// layer) must override this to advance once.
    fn allocate_multi(&mut self, capacities: &[u64], cores: &[MultiCoreView]) -> Vec<Vec<u64>> {
        let mut shares: Vec<Vec<u64>> = cores
            .iter()
            .map(|_| Vec::with_capacity(capacities.len()))
            .collect();
        for (r, &cap) in capacities.iter().enumerate() {
            let layer: Vec<CoreView> = cores.iter().map(|c| c.project(r)).collect();
            for (row, share) in shares.iter_mut().zip(self.allocate(cap, &layer)) {
                row.push(share);
            }
        }
        shares
    }
}

fn serve_in_priority_order(capacity: u64, cores: &[CoreView], order: Vec<usize>) -> Vec<u64> {
    let mut shares = vec![0u64; cores.len()];
    let mut left = capacity;
    for i in order {
        if left == 0 {
            break;
        }
        let give = cores[i].step_demand.min(left);
        shares[i] = give;
        left -= give;
    }
    shares
}

/// Serve the cores with the most remaining phases first (ties: larger
/// remaining requirement) — the online version of the paper's GreedyBalance.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBalancePolicy;

/// Serve phase `j` on every core before any core moves on to phase `j + 1` —
/// the online version of the paper's RoundRobin.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinPolicy;

/// Give every active core the same share regardless of need.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualSharePolicy;

/// Split the bus proportionally to the active phases' demands.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProportionalSharePolicy;

impl OnlinePolicy for GreedyBalancePolicy {
    fn name(&self) -> &'static str {
        "GreedyBalance"
    }

    fn allocate(&mut self, capacity: u64, cores: &[CoreView]) -> Vec<u64> {
        let mut order: Vec<usize> = (0..cores.len()).filter(|&i| cores[i].is_active()).collect();
        order.sort_by(|&a, &b| {
            cores[b]
                .remaining_phases
                .cmp(&cores[a].remaining_phases)
                .then_with(|| {
                    cores[b]
                        .remaining_workload
                        .cmp(&cores[a].remaining_workload)
                })
                .then_with(|| a.cmp(&b))
        });
        serve_in_priority_order(capacity, cores, order)
    }
}

impl OnlinePolicy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "RoundRobin"
    }

    fn allocate(&mut self, capacity: u64, cores: &[CoreView]) -> Vec<u64> {
        // The current phase index of a core is (total phases) − (remaining);
        // serving only the cores with the *minimal* phase index reproduces
        // the offline algorithm's phase barriers without knowing the future.
        // Because all tasks of one workload have the same phase count in the
        // harness, the minimal completed-phase count identifies the barrier;
        // for heterogeneous phase counts the policy degrades gracefully to a
        // fewest-phases-completed-first rule.
        let active: Vec<usize> = (0..cores.len()).filter(|&i| cores[i].is_active()).collect();
        if active.is_empty() {
            return vec![0; cores.len()];
        }
        let max_remaining = active
            .iter()
            .map(|&i| cores[i].remaining_phases)
            .max()
            .unwrap_or(0);
        let participants: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&i| cores[i].remaining_phases == max_remaining)
            .collect();
        serve_in_priority_order(capacity, cores, participants)
    }
}

impl OnlinePolicy for EqualSharePolicy {
    fn name(&self) -> &'static str {
        "EqualShare"
    }

    fn allocate(&mut self, capacity: u64, cores: &[CoreView]) -> Vec<u64> {
        // Exact uniform split of the whole pool over the active cores; the
        // pool remainder goes to the lowest-indexed actives, one unit each.
        let weights: Vec<u64> = cores.iter().map(|c| u64::from(c.is_active())).collect();
        largest_remainder_split(capacity, &weights)
    }
}

impl OnlinePolicy for ProportionalSharePolicy {
    fn name(&self) -> &'static str {
        "ProportionalShare"
    }

    fn allocate(&mut self, capacity: u64, cores: &[CoreView]) -> Vec<u64> {
        let demands: Vec<u64> = cores.iter().map(|c| c.step_demand).collect();
        let total: u128 = demands.iter().map(|&d| u128::from(d)).sum();
        if total <= u128::from(capacity) {
            // Everything fits (including the all-zero case): grant demands
            // exactly.
            demands
        } else {
            largest_remainder_split(capacity, &demands)
        }
    }
}

/// The full set of built-in policies, boxed for sweeps.
#[must_use]
pub fn standard_policies() -> Vec<Box<dyn OnlinePolicy>> {
    vec![
        Box::new(GreedyBalancePolicy),
        Box::new(RoundRobinPolicy),
        Box::new(EqualSharePolicy),
        Box::new(ProportionalSharePolicy),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ten-unit pool stands in for the engine's grid in these tests.
    const POOL: u64 = 10;

    fn view(demand: Option<u64>, remaining: usize) -> CoreView {
        match demand {
            Some(units) => CoreView {
                active_requirement: Some(units),
                step_demand: units,
                remaining_workload: units,
                remaining_phases: remaining,
            },
            None => CoreView {
                active_requirement: None,
                step_demand: 0,
                remaining_workload: 0,
                remaining_phases: 0,
            },
        }
    }

    #[test]
    fn greedy_balance_prefers_longer_chains() {
        let cores = vec![view(Some(5), 1), view(Some(5), 3)];
        let shares = GreedyBalancePolicy.allocate(POOL, &cores);
        assert_eq!(shares, vec![5, 5]);
        // With scarce resource the longer chain wins entirely.
        let cores = vec![view(Some(9), 1), view(Some(9), 3)];
        let shares = GreedyBalancePolicy.allocate(POOL, &cores);
        assert_eq!(shares, vec![1, 9]);
    }

    #[test]
    fn round_robin_serves_only_the_current_phase_barrier() {
        // Core 0 has already finished one phase more than core 1.
        let cores = vec![view(Some(5), 1), view(Some(5), 2)];
        let shares = RoundRobinPolicy.allocate(POOL, &cores);
        assert_eq!(shares[1], 5);
        assert_eq!(shares[0], 0, "cores ahead of the barrier wait");
    }

    #[test]
    fn equal_share_ignores_demand_and_spends_the_pool() {
        let cores = vec![view(Some(1), 1), view(Some(9), 1), view(None, 0)];
        let shares = EqualSharePolicy.allocate(POOL, &cores);
        assert_eq!(shares, vec![5, 5, 0]);
        // Odd splits hand the remainder to the lowest-indexed actives, so
        // the whole pool is always spent.
        let cores = vec![view(Some(1), 1), view(Some(9), 1), view(Some(3), 1)];
        let shares = EqualSharePolicy.allocate(POOL, &cores);
        assert_eq!(shares, vec![4, 3, 3]);
    }

    #[test]
    fn proportional_share_scales_to_capacity() {
        let cores = vec![view(Some(8), 1), view(Some(8), 1)];
        let shares = ProportionalSharePolicy.allocate(POOL, &cores);
        assert_eq!(shares, vec![5, 5]);
        // Under-subscribed: demands are granted exactly.
        let cores = vec![view(Some(3), 1), view(Some(5), 1)];
        let shares = ProportionalSharePolicy.allocate(POOL, &cores);
        assert_eq!(shares, vec![3, 5]);
    }

    #[test]
    fn proportional_share_never_zeroes_a_positive_demand_while_units_remain() {
        // One huge and many tiny demands on a large grid: the old fixed-grid
        // floor gave the tiny cores a zero share; the exact split hands each
        // of them their unit.
        let pool = 1_000_000u64;
        let cores = vec![
            view(Some(pool), 1),
            view(Some(1), 1),
            view(Some(1), 1),
            view(Some(1), 1),
        ];
        let shares = ProportionalSharePolicy.allocate(pool, &cores);
        assert_eq!(shares[1], 1);
        assert_eq!(shares[2], 1);
        assert_eq!(shares[3], 1);
        assert_eq!(shares.iter().sum::<u64>(), pool);
    }

    fn multi_view(demands: &[u64], remaining: usize) -> MultiCoreView {
        MultiCoreView {
            active_requirement: Some(demands.to_vec()),
            step_demand: demands.to_vec(),
            remaining_workload: demands.to_vec(),
            remaining_phases: remaining,
        }
    }

    #[test]
    fn the_default_multi_lift_arbitrates_every_layer_independently() {
        // Two resources with different capacities; the scalar rule applied
        // per projected layer must reproduce itself column by column.
        let caps = [10u64, 4];
        let cores = vec![
            multi_view(&[5, 4], 1),
            multi_view(&[9, 1], 3),
            MultiCoreView::idle(2),
        ];
        for mut policy in standard_policies() {
            let shares = policy.allocate_multi(&caps, &cores);
            assert_eq!(shares.len(), cores.len());
            for (r, &cap) in caps.iter().enumerate() {
                let layer: Vec<CoreView> = cores.iter().map(|c| c.project(r)).collect();
                let scalar = policy.allocate(cap, &layer);
                let column: Vec<u64> = shares.iter().map(|row| row[r]).collect();
                assert_eq!(column, scalar, "{} resource {r}", policy.name());
                assert!(column.iter().sum::<u64>() <= cap);
            }
            // The idle core receives nothing on any layer.
            assert_eq!(shares[2], vec![0, 0]);
        }
    }

    #[test]
    fn projection_reproduces_the_scalar_view() {
        let multi = multi_view(&[7, 2], 4);
        assert_eq!(multi.resources(), 2);
        assert_eq!(
            multi.project(1),
            CoreView {
                active_requirement: Some(2),
                step_demand: 2,
                remaining_workload: 2,
                remaining_phases: 4,
            }
        );
        assert!(!MultiCoreView::idle(3).is_active());
        assert!(!MultiCoreView::idle(3).project(0).is_active());
    }

    #[test]
    fn all_policies_return_feasible_vectors() {
        let cores = vec![
            view(Some(9), 4),
            view(Some(7), 2),
            view(Some(2), 6),
            view(None, 0),
        ];
        for mut policy in standard_policies() {
            let shares = policy.allocate(POOL, &cores);
            assert_eq!(shares.len(), cores.len());
            assert!(
                shares.iter().sum::<u64>() <= POOL,
                "{} overuses the bus",
                policy.name()
            );
            assert!(shares.iter().all(|&s| s <= POOL));
        }
    }
}
