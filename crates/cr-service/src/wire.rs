//! The JSONL wire protocol of the `cr-serve` binary.
//!
//! One JSON object per line in, one per line out, batch-order stable.
//!
//! # Request
//!
//! ```json
//! {"id": 1, "method": "OptM", "engine": "auto", "want_schedule": false,
//!  "budget": {"max_rounds": 8}, "rows": [[60, 40], [40, 60]]}
//! ```
//!
//! * `method` (required) — a registry key (`"GreedyBalance"`, `"OptM"`,
//!   `"Bounds"`, `"sim:GreedyBalance"`, …).
//! * The instance, one of:
//!   * `rows` — per-processor requirement lists in integer percent (the
//!     paper's figure notation), unit-size jobs;
//!   * `instance` — the full serialized [`Instance`] (exact rationals,
//!     arbitrary volumes), as produced by serde — including its optional
//!     `extra` resource layers.
//! * `resources` (optional, `rows` form only) — extra resource layers as a
//!   list of percent grids, each with exactly the shape of `rows`:
//!   `"resources": [[[75, 10], [25]]]` adds one extra layer to a two-core
//!   `rows` grid of 2 + 1 jobs, making the request a `k = 2` multi-resource
//!   instance.  A layer whose shape differs from `rows` is a `bad_request`.
//!   With the `instance` form, embed the layers in the instance's own
//!   `extra` field instead.
//! * `id` (optional) — echoed in the response; defaults to the 0-based
//!   position of the line in the stream.
//! * `engine` (optional) — `"auto"` (default) | `"scaled"` | `"rational"`.
//! * `budget` (optional) — `{"max_steps": N, "max_rounds": N,
//!   "max_wall_ms": N}`, all optional.
//! * `deadline_ms` (optional) — wall-clock deadline for this request in
//!   milliseconds, shorthand for `budget.max_wall_ms` (when both appear
//!   the smaller wins); an over-deadline request answers with a
//!   `deadline_exceeded` error in its slot within roughly one check
//!   interval (50 ms) past the deadline.
//! * `want_schedule` (optional, default `false`) — include the full
//!   schedule in the response.
//! * `arrivals` (optional) — per-processor arrival steps (online `sim:*`
//!   methods only).
//!
//! # Response
//!
//! ```json
//! {"id": 1, "method": "OptM", "ok": {"makespan": 3, "engine": "scaled",
//!  "fallbacks": [], "steps": 0, "rounds": 3, "lower_bounds": {...},
//!  "schedule": null}, "error": null}
//! ```
//!
//! Exactly one of `ok` / `error` is non-null.  `error` carries a stable
//! snake_case `kind` (see `SolveError::kind`) plus a human-readable
//! `message`; a line that fails to parse gets `kind: "bad_request"`.
//!
//! # Transport-level error kinds
//!
//! The serving layer adds five kinds of its own on top of the solver's
//! [`SolveError::kind`] vocabulary (see [`WIRE_ERROR_KINDS`]):
//!
//! * `bad_request` — the line failed to parse, or a blank-line flush
//!   arrived with no accumulated requests;
//! * `quota_exceeded` — the request exceeded the client's in-flight quota
//!   (socket server; requests past the quota cut of one flush);
//! * `overloaded` — the server shed the whole flush because its global
//!   in-flight cap was reached (socket server);
//! * `draining` — the flush arrived while the server was draining for
//!   shutdown;
//! * `idle_timeout` — the connection sat idle (no bytes received) past the
//!   server's idle timeout and is being closed (socket server; sent as a
//!   final notice line, not in a request's slot).
//!
//! # Streaming frames
//!
//! A response whose requested schedule has at least
//! [`StreamPolicy::threshold_steps`] steps is *streamed* instead of
//! buffered into one giant line: a `"frame":"head"` line (the normal
//! response with `schedule: null` plus a `stream` descriptor), a sequence
//! of `"frame":"chunk"` lines each carrying up to
//! [`StreamPolicy::chunk_steps`] schedule rows, and a closing
//! `"frame":"end"` line.  Non-streamed lines carry no `frame` key.
//! [`assemble_streamed`] reassembles the frames into the exact single-line
//! response a non-streaming path would have produced, byte for byte.
//! `docs/WIRE.md` specifies every frame with worked examples.

use crate::SolverService;
use cr_algos::solver::{Budget, EnginePreference, SolveError, SolveOutcome, SolveRequest};
use cr_core::{Instance, Job, Ratio};
use serde::{Deserialize, Serialize, Value};

/// One parsed request line: the wire id plus the solve request.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Echoed in the response.
    pub id: u64,
    /// The request to dispatch.
    pub request: SolveRequest,
}

fn field_u64(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => u64::deserialize(v)
            .map(Some)
            .map_err(|e| format!("field `{key}`: {e}")),
    }
}

fn field_usize(value: &Value, key: &str) -> Result<Option<usize>, String> {
    match field_u64(value, key)? {
        None => Ok(None),
        Some(v) => usize::try_from(v)
            .map(Some)
            .map_err(|_| format!("field `{key}`: {v} does not fit this platform's usize")),
    }
}

/// Checks one wire rational and re-enters it through [`Ratio::new`].
///
/// The derived Deserialize fills Ratio's raw fields unchecked; only
/// strictly positive denominators and non-extreme numerators are guaranteed
/// to re-enter [`Ratio::new`] without panicking (our own serializer only
/// emits normalized, positive-denominator rationals, so this rejects
/// nothing round-tripped).
fn sanitize_ratio(what: &str, ratio: Ratio) -> Result<Ratio, String> {
    if ratio.denom() <= 0 {
        return Err(format!("{what} has a non-positive denominator"));
    }
    if ratio.numer() == i128::MIN {
        return Err(format!("{what} numerator out of range"));
    }
    Ok(Ratio::new(ratio.numer(), ratio.denom()))
}

/// Rebuilds a deserialized instance through the validating constructors, so
/// malformed wire input (zero denominators, out-of-range requirements,
/// non-positive volumes, misshapen resource layers) is rejected at parse
/// time instead of panicking inside a solver.
fn sanitize_instance(instance: &Instance) -> Result<Instance, String> {
    let mut rows: Vec<Vec<Job>> = Vec::with_capacity(instance.processors());
    for i in 0..instance.processors() {
        let mut row = Vec::with_capacity(instance.jobs_on(i));
        for job in instance.processor_jobs(i) {
            row.push(Job::new(
                sanitize_ratio("job requirement", job.requirement)?,
                sanitize_ratio("job volume", job.volume)?,
            ));
        }
        rows.push(row);
    }
    let mut extra: Vec<Vec<Vec<Ratio>>> = Vec::with_capacity(instance.extra_layers().len());
    for (e, layer) in instance.extra_layers().iter().enumerate() {
        let mut out_layer = Vec::with_capacity(layer.len());
        for layer_row in layer {
            let mut out_row = Vec::with_capacity(layer_row.len());
            for &req in layer_row {
                out_row.push(sanitize_ratio(
                    &format!("resource {} requirement", e + 1),
                    req,
                )?);
            }
            out_layer.push(out_row);
        }
        extra.push(out_layer);
    }
    Instance::with_resources(rows, extra).map_err(|e| e.to_string())
}

/// Parses one percent grid (`rows` or one `resources` layer) into rational
/// requirement rows.
fn parse_percent_grid(value: &Value, what: &str) -> Result<Vec<Vec<Ratio>>, String> {
    let rows: Vec<Vec<i64>> = Vec::deserialize(value).map_err(|e| format!("{what}: {e}"))?;
    rows.into_iter()
        .map(|row| {
            row.into_iter()
                .map(|pct| {
                    if (0..=100).contains(&pct) {
                        Ok(Ratio::new(i128::from(pct), 100))
                    } else {
                        Err(format!("{what}: percentage {pct} outside [0, 100]"))
                    }
                })
                .collect()
        })
        .collect()
}

/// Parses the instance part of a request object (`rows` shorthand or full
/// `instance`).
fn parse_instance(value: &Value) -> Result<Instance, String> {
    if let Some(rows_value) = value.get("rows") {
        let base = parse_percent_grid(rows_value, "field `rows`")?;
        let mut layers = vec![base];
        match value.get("resources") {
            None | Some(Value::Null) => {}
            Some(Value::Array(entries)) => {
                for (e, entry) in entries.iter().enumerate() {
                    layers.push(parse_percent_grid(
                        entry,
                        &format!("field `resources` layer {e}"),
                    )?);
                }
            }
            Some(_) => {
                return Err(
                    "field `resources` must be an array of percent grids shaped like `rows`"
                        .to_string(),
                )
            }
        }
        return Instance::multi_unit_from_requirements(layers).map_err(|e| e.to_string());
    }
    if let Some(instance_value) = value.get("instance") {
        if value
            .get("resources")
            .is_some_and(|v| !matches!(v, Value::Null))
        {
            return Err(
                "field `resources` applies to the `rows` shorthand only; embed extra layers in \
                 the instance's own `extra` field"
                    .to_string(),
            );
        }
        let instance =
            Instance::deserialize(instance_value).map_err(|e| format!("field `instance`: {e}"))?;
        return sanitize_instance(&instance);
    }
    Err("request needs an instance: either `rows` (percent shorthand) or `instance`".to_string())
}

/// Parses one request line.  `default_id` is used when the line carries no
/// `id` of its own.
///
/// # Errors
///
/// A human-readable message describing the malformed field; the serve loop
/// reports it as a `bad_request` response in the line's slot.
pub fn parse_request(line: &str, default_id: u64) -> Result<WireRequest, String> {
    let _parse_span = cr_obs::Span::enter(cr_obs::names::SPAN_SERVE_PARSE);
    let value: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let method = match value.get("method") {
        Some(Value::String(s)) => s.clone(),
        Some(_) => return Err("field `method` must be a string".to_string()),
        None => return Err("missing field `method`".to_string()),
    };
    let instance = parse_instance(&value)?;
    let engine = match value.get("engine") {
        None | Some(Value::Null) => EnginePreference::Auto,
        Some(Value::String(s)) => match s.as_str() {
            "auto" => EnginePreference::Auto,
            "scaled" => EnginePreference::Scaled,
            "rational" => EnginePreference::Rational,
            other => return Err(format!("unknown engine preference `{other}`")),
        },
        Some(_) => return Err("field `engine` must be a string".to_string()),
    };
    let mut budget = match value.get("budget") {
        None | Some(Value::Null) => Budget::UNLIMITED,
        Some(b) => Budget {
            max_steps: field_usize(b, "max_steps")?,
            max_rounds: field_usize(b, "max_rounds")?,
            max_wall_ms: field_u64(b, "max_wall_ms")?,
        },
    };
    // Top-level `deadline_ms` is shorthand for `budget.max_wall_ms`; when
    // both appear the tighter bound wins.
    if let Some(deadline_ms) = field_u64(&value, "deadline_ms")? {
        budget.max_wall_ms = Some(
            budget
                .max_wall_ms
                .map_or(deadline_ms, |w| w.min(deadline_ms)),
        );
    }
    let want_schedule = match value.get("want_schedule") {
        None | Some(Value::Null) => false,
        Some(v) => bool::deserialize(v).map_err(|e| format!("field `want_schedule`: {e}"))?,
    };
    let arrivals = match value.get("arrivals") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            Vec::<u64>::deserialize(v)
                .map_err(|e| format!("field `arrivals`: {e}"))?
                .into_iter()
                .map(|a| {
                    usize::try_from(a).map_err(|_| {
                        format!("field `arrivals`: {a} does not fit this platform's usize")
                    })
                })
                .collect::<Result<Vec<usize>, String>>()?,
        ),
    };
    let id = field_u64(&value, "id")?.unwrap_or(default_id);
    let mut request = SolveRequest::new(method, instance)
        .with_engine(engine)
        .with_budget(budget);
    request.want_schedule = want_schedule;
    request.arrivals = arrivals;
    Ok(WireRequest { id, request })
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn opt_usize(value: Option<usize>) -> Value {
    value.map_or(Value::Null, |v| v.serialize())
}

fn outcome_value(outcome: &SolveOutcome) -> Value {
    let lb = &outcome.lower_bounds;
    obj(vec![
        ("makespan", opt_usize(outcome.makespan)),
        ("engine", Value::String(outcome.engine.as_str().to_string())),
        ("fallbacks", outcome.fallbacks.serialize()),
        ("steps", outcome.steps.serialize()),
        ("rounds", outcome.rounds.serialize()),
        (
            "lower_bounds",
            obj(vec![
                ("workload", lb.workload.serialize()),
                ("chain", lb.chain.serialize()),
                ("volume_chain", lb.volume_chain.serialize()),
                ("trivial", lb.trivial.serialize()),
                ("best", opt_usize(lb.best)),
            ]),
        ),
        (
            "schedule",
            outcome
                .schedule
                .as_ref()
                .map_or(Value::Null, Serialize::serialize),
        ),
    ])
}

fn error_value(kind: &str, message: &str) -> Value {
    obj(vec![
        ("kind", Value::String(kind.to_string())),
        ("message", Value::String(message.to_string())),
    ])
}

fn render_response(id: u64, method: &str, ok: Value, error: Value) -> String {
    serde_json::to_string(&obj(vec![
        ("id", id.serialize()),
        ("method", Value::String(method.to_string())),
        ("ok", ok),
        ("error", error),
    ]))
    // lint: allow(panic_hygiene) — serialization into an in-memory String is infallible
    .expect("response serialization is infallible")
}

/// Renders one solve result as a single-line JSON response.
#[must_use]
pub fn response_line(id: u64, method: &str, result: &Result<SolveOutcome, SolveError>) -> String {
    match result {
        Ok(outcome) => render_response(id, method, outcome_value(outcome), Value::Null),
        Err(err) => render_response(
            id,
            method,
            Value::Null,
            error_value(err.kind(), &err.to_string()),
        ),
    }
}

/// Renders a parse failure as a single-line JSON response.
#[must_use]
pub fn bad_request_line(id: u64, message: &str) -> String {
    render_response(id, "", Value::Null, error_value("bad_request", message))
}

/// The structured response to a blank-line flush that carried no requests
/// (previously the serve loop swallowed such batches silently).
#[must_use]
pub fn empty_flush_line(id: u64) -> String {
    bad_request_line(id, "empty batch: blank-line flush with no requests")
}

/// Every transport-level error `kind` the serving layer itself can emit
/// (the solvers' own vocabulary is [`SolveError::ALL_KINDS`]).
pub const WIRE_ERROR_KINDS: [&str; 5] = [
    "bad_request",
    "quota_exceeded",
    "overloaded",
    "draining",
    "idle_timeout",
];

/// One response slot of a processed batch, before rendering: either a
/// dispatched solve or a transport-level rejection.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItem {
    /// The line parsed and was dispatched through the service.
    Solved {
        /// Echoed wire id.
        id: u64,
        /// The dispatched method key.
        method: String,
        /// The solve result occupying this slot.
        result: Result<SolveOutcome, SolveError>,
    },
    /// The serving layer rejected the slot without dispatching it.
    Rejected {
        /// Echoed wire id.
        id: u64,
        /// One of [`WIRE_ERROR_KINDS`].
        kind: &'static str,
        /// Human-readable description.
        message: String,
    },
}

impl BatchItem {
    /// The wire id this slot answers.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            BatchItem::Solved { id, .. } | BatchItem::Rejected { id, .. } => *id,
        }
    }

    /// A rejection slot for a raw line that was never parsed.
    #[must_use]
    pub fn rejected(id: u64, kind: &'static str, message: impl Into<String>) -> Self {
        debug_assert!(WIRE_ERROR_KINDS.contains(&kind));
        BatchItem::Rejected {
            id,
            kind,
            message: message.into(),
        }
    }
}

/// Power-of-two bucket bounds of the `serve.batch_size` histogram (lines
/// per flush reaching the solver tier, rejects included).
const BATCH_SIZE_BOUNDS: [u64; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Records one flush into the service's observability registry: the
/// `serve.batches` counter and the `serve.batch_size` histogram.  Once per
/// flush, so the registry's name table is off the per-request path.
fn record_flush(service: &SolverService, lines: usize) {
    let obs = service.obs_registry();
    if !obs.enabled() {
        return;
    }
    obs.counter(cr_obs::names::SERVE_BATCHES).inc();
    obs.histogram(cr_obs::names::SERVE_BATCH_SIZE, &BATCH_SIZE_BOUNDS)
        .observe(u64::try_from(lines).unwrap_or(u64::MAX));
}

/// Parses and solves one batch of JSONL request lines, returning one
/// structured [`BatchItem`] per line, in input order.  Lines default their
/// `id` to `first_id + position`; unparseable lines occupy their slot as
/// `bad_request` rejections.
#[must_use]
pub fn solve_batch_items(
    service: &SolverService,
    lines: &[String],
    first_id: u64,
) -> Vec<BatchItem> {
    solve_batch_items_cancellable(service, lines, first_id, &cr_core::CancelToken::never())
}

/// [`solve_batch_items`] under a parent [`cr_core::CancelToken`]: the
/// socket server derives one token per flush (bounded by the server's
/// default deadline, cancelled when the connection dies) and every request
/// solves under a child of it, additionally bounded by its own
/// `deadline_ms`.
#[must_use]
pub fn solve_batch_items_cancellable(
    service: &SolverService,
    lines: &[String],
    first_id: u64,
    parent: &cr_core::CancelToken,
) -> Vec<BatchItem> {
    record_flush(service, lines.len());
    let parsed: Vec<Result<WireRequest, String>> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| parse_request(line, first_id + i as u64))
        .collect();
    let requests: Vec<SolveRequest> = parsed
        .iter()
        .filter_map(|p| p.as_ref().ok().map(|w| w.request.clone()))
        .collect();
    let mut results = service
        .solve_batch_cancellable(&requests, parent)
        .into_iter();
    parsed
        .into_iter()
        .enumerate()
        .map(|(i, entry)| match entry {
            Ok(wire) => BatchItem::Solved {
                id: wire.id,
                method: wire.request.method,
                // lint: allow(panic_hygiene) — `results` was built with exactly one entry per Ok(parsed) request
                result: results.next().expect("one result per parsed request"),
            },
            Err(message) => BatchItem::Rejected {
                id: first_id + i as u64,
                kind: "bad_request",
                message,
            },
        })
        .collect()
}

/// Renders one batch item as a single (non-streamed) response line.
#[must_use]
pub fn render_item(item: &BatchItem) -> String {
    let _serialize_span = cr_obs::Span::enter(cr_obs::names::SPAN_SERVE_SERIALIZE);
    match item {
        BatchItem::Solved { id, method, result } => response_line(*id, method, result),
        BatchItem::Rejected { id, kind, message } => {
            render_response(*id, "", Value::Null, error_value(kind, message))
        }
    }
}

/// When and how large schedules are streamed as multi-line responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPolicy {
    /// Schedules with at least this many steps stream; shorter ones (and
    /// every schedule when the threshold is `usize::MAX`) ride in one line.
    pub threshold_steps: usize,
    /// Schedule rows per `"frame":"chunk"` line (must be positive).
    pub chunk_steps: usize,
}

impl StreamPolicy {
    /// Never stream (the stdin `cr-serve` default, and the rendering used
    /// by the golden batch tests).
    pub const BUFFERED: StreamPolicy = StreamPolicy {
        threshold_steps: usize::MAX,
        chunk_steps: usize::MAX,
    };

    /// The socket server's default: schedules of 256+ steps stream in
    /// 64-row chunks.
    pub const DEFAULT: StreamPolicy = StreamPolicy {
        threshold_steps: 256,
        chunk_steps: 64,
    };
}

/// Renders one batch item under a streaming policy: one line for ordinary
/// responses, `head` + `chunk`* + `end` lines when the response carries a
/// schedule of at least [`StreamPolicy::threshold_steps`] steps.
#[must_use]
pub fn render_item_streamed(item: &BatchItem, policy: StreamPolicy) -> Vec<String> {
    let BatchItem::Solved {
        id,
        method,
        result: Ok(outcome),
    } = item
    else {
        return vec![render_item(item)];
    };
    let Some(schedule) = outcome.schedule.as_ref() else {
        return vec![render_item(item)];
    };
    let steps = schedule.num_steps();
    if steps < policy.threshold_steps {
        return vec![render_item(item)];
    }
    let _serialize_span = cr_obs::Span::enter(cr_obs::names::SPAN_SERVE_SERIALIZE);
    let chunk_steps = policy.chunk_steps.max(1);
    let chunks = steps.div_ceil(chunk_steps);

    // Head: the ordinary response shape with the schedule nulled out, a
    // `stream` descriptor appended inside `ok`, and a top-level frame tag.
    let mut ok = outcome_value(outcome);
    if let Value::Object(entries) = &mut ok {
        for (key, value) in entries.iter_mut() {
            if key == "schedule" {
                *value = Value::Null;
            }
        }
        entries.push((
            "stream".to_string(),
            obj(vec![
                ("steps", steps.serialize()),
                ("chunks", chunks.serialize()),
                ("chunk_steps", chunk_steps.serialize()),
            ]),
        ));
    }
    let head = serde_json::to_string(&obj(vec![
        ("id", id.serialize()),
        ("method", Value::String(method.clone())),
        ("ok", ok),
        ("error", Value::Null),
        ("frame", Value::String("head".to_string())),
    ]))
    // lint: allow(panic_hygiene) — serialization into an in-memory String is infallible
    .expect("head serialization is infallible");

    let mut lines = Vec::with_capacity(chunks + 2);
    lines.push(head);
    for (seq, rows) in schedule.steps().chunks(chunk_steps).enumerate() {
        lines.push(
            serde_json::to_string(&obj(vec![
                ("id", id.serialize()),
                ("frame", Value::String("chunk".to_string())),
                ("seq", seq.serialize()),
                (
                    "steps",
                    Value::Array(rows.iter().map(Serialize::serialize).collect()),
                ),
            ]))
            // lint: allow(panic_hygiene) — serialization into an in-memory String is infallible
            .expect("chunk serialization is infallible"),
        );
    }
    lines.push(
        serde_json::to_string(&obj(vec![
            ("id", id.serialize()),
            ("frame", Value::String("end".to_string())),
            ("chunks", chunks.serialize()),
        ]))
        // lint: allow(panic_hygiene) — serialization into an in-memory String is infallible
        .expect("end serialization is infallible"),
    );
    lines
}

/// Reassembles the streamed frames of one response (`head`, `chunk`*,
/// `end`, in order) into the exact single-line response a non-streaming
/// renderer would have produced — byte for byte.
///
/// # Errors
///
/// A human-readable message when the frame sequence is malformed (missing
/// head/end, out-of-order chunks, id mismatches, wrong chunk count).
pub fn assemble_streamed(lines: &[String]) -> Result<String, String> {
    let parse = |line: &str| -> Result<Value, String> {
        serde_json::from_str(line).map_err(|e| format!("invalid frame JSON: {e}"))
    };
    let frame_tag = |value: &Value| -> Option<String> {
        match value.get("frame") {
            Some(Value::String(s)) => Some(s.clone()),
            _ => None,
        }
    };
    let (head_line, rest) = lines.split_first().ok_or("no frames")?;
    let head = parse(head_line)?;
    if frame_tag(&head).as_deref() != Some("head") {
        return Err("first frame is not a head".to_string());
    }
    let id = field_u64(&head, "id")?.ok_or("head frame has no id")?;
    let mut steps: Vec<Value> = Vec::new();
    let mut chunks_seen = 0usize;
    let mut closed = false;
    for line in rest {
        let frame = parse(line)?;
        if field_u64(&frame, "id")? != Some(id) {
            return Err("frame id mismatch".to_string());
        }
        match frame_tag(&frame).as_deref() {
            Some("chunk") => {
                if closed {
                    return Err("chunk after end frame".to_string());
                }
                let seq = field_u64(&frame, "seq")?.ok_or("chunk frame has no seq")?;
                if seq != chunks_seen as u64 {
                    return Err(format!("chunk {seq} out of order (expected {chunks_seen})"));
                }
                match frame.get("steps") {
                    Some(Value::Array(rows)) => steps.extend(rows.iter().cloned()),
                    _ => return Err("chunk frame has no steps array".to_string()),
                }
                chunks_seen += 1;
            }
            Some("end") => {
                let expected = field_u64(&frame, "chunks")?.ok_or("end frame has no chunks")?;
                if expected != chunks_seen as u64 {
                    return Err(format!("end expects {expected} chunks, saw {chunks_seen}"));
                }
                closed = true;
            }
            other => return Err(format!("unexpected frame tag {other:?}")),
        }
    }
    if !closed {
        return Err("stream not closed by an end frame".to_string());
    }

    // Rebuild the single-line shape: drop the frame tag and the stream
    // descriptor, splice the schedule rows back in.
    let Value::Object(mut entries) = head else {
        return Err("head frame is not an object".to_string());
    };
    entries.retain(|(k, _)| k != "frame");
    for (key, value) in &mut entries {
        if key == "ok" {
            if let Value::Object(ok_entries) = value {
                ok_entries.retain(|(k, _)| k != "stream");
                for (ok_key, ok_value) in ok_entries.iter_mut() {
                    if ok_key == "schedule" {
                        *ok_value = Value::Object(vec![(
                            "steps".to_string(),
                            Value::Array(std::mem::take(&mut steps)),
                        )]);
                    }
                }
            }
        }
    }
    serde_json::to_string(&Value::Object(entries)).map_err(|e| e.to_string())
}

/// Processes one batch of JSONL request lines end to end: parse, fan out
/// through `service`, render — one response line per request line, in input
/// order.  Lines default their `id` to `first_id + position`.
#[must_use]
pub fn process_batch(service: &SolverService, lines: &[String], first_id: u64) -> Vec<String> {
    solve_batch_items(service, lines, first_id)
        .iter()
        .map(render_item)
        .collect()
}
