//! E3 — regenerates Figure 3 / Theorem 3: on the adversarial two-processor
//! family, RoundRobin needs 2n steps while the optimum is n + 1, so the
//! approximation ratio tends to 2.  On random instances the ratio stays well
//! below 2 (the bound is a worst case, not typical behaviour).

use cr_algos::{opt_two_makespan, GreedyBalance, RoundRobin, Scheduler};
use cr_bench::{markdown_table, ExperimentRow};
use cr_instances::{random_unit_instance, round_robin_worst_case, round_robin_worst_case_opt, RandomConfig};

fn main() {
    println!("E3 / Figure 3 — RoundRobin worst-case family (ratio → 2)\n");

    let mut rows = Vec::new();
    for n in [5usize, 10, 25, 50, 100, 250, 500, 1000] {
        let instance = round_robin_worst_case(n);
        let rr = RoundRobin::new().makespan(&instance);
        // The optimum is n + 1 analytically; verify with the exact DP while it
        // is cheap.
        let opt = if n <= 250 {
            let dp = opt_two_makespan(&instance);
            assert_eq!(dp, round_robin_worst_case_opt(n), "Figure 3a optimum check");
            dp
        } else {
            round_robin_worst_case_opt(n)
        };
        rows.push(ExperimentRow::new(
            format!("fig3 n={n}"),
            "RoundRobin",
            &instance,
            rr,
            opt,
            true,
        ));
        let greedy = GreedyBalance::new().makespan(&instance);
        rows.push(ExperimentRow::new(
            format!("fig3 n={n}"),
            "GreedyBalance",
            &instance,
            greedy,
            opt,
            true,
        ));
    }
    println!("{}", markdown_table("Adversarial family (Theorem 3)", &rows));

    // Context: on random two-processor instances RoundRobin is far from its
    // worst case.
    let mut random_rows = Vec::new();
    for seed in 0..5 {
        let instance = random_unit_instance(&RandomConfig::uniform(2, 40), seed);
        let opt = opt_two_makespan(&instance);
        let rr = RoundRobin::new().makespan(&instance);
        random_rows.push(ExperimentRow::new(
            format!("uniform m=2 n=40 seed={seed}"),
            "RoundRobin",
            &instance,
            rr,
            opt,
            true,
        ));
    }
    println!("{}", markdown_table("Random two-processor instances", &random_rows));
    println!("paper: worst-case ratio exactly 2 (Theorem 3); the family's ratio 2n/(n+1) → 2.");
}
