//! E10 — the motivating scenario of Section 1 on the synthetic many-core
//! shared-bus simulator: makespan, bus utilization and slowdown of four
//! online arbitration policies across core counts and task mixes.

#![forbid(unsafe_code)]

use cr_instances::{generate_workload, TaskMix, WorkloadConfig};
use cr_sim::{standard_policies, Simulator};

fn main() {
    println!("E10 — many-core shared-bus simulation sweep\n");

    for mix in [
        TaskMix::IoBound,
        TaskMix::Mixed,
        TaskMix::Bursty,
        TaskMix::ComputeBound,
    ] {
        println!("── task mix {mix:?} ──");
        println!(
            "{:>6} {:>20} {:>9} {:>9} {:>8} {:>9} {:>9} {:>10}",
            "cores", "policy", "makespan", "LB", "ratio", "bus util", "avg slow", "peak waste"
        );
        for cores in [4usize, 8, 16, 32, 64] {
            let cfg = WorkloadConfig {
                cores,
                phases_per_task: 8,
                mix,
                denominator: 100,
                unit_phases: true,
            };
            let workload = generate_workload(&cfg, 7_000 + cores as u64);
            let sim = Simulator::from_instance(&workload);
            let mut policies = standard_policies();
            for report in sim.compare(&mut policies).expect("simulation completes") {
                // The exact wasted-share-per-step series drives the waste
                // figures; the peak is its worst single step.
                let peak_waste = (0..report.makespan)
                    .map(|t| report.wasted_fraction(t))
                    .fold(0.0f64, f64::max);
                println!(
                    "{:>6} {:>20} {:>9} {:>9} {:>8.3} {:>8.1}% {:>9.2} {:>9.1}%",
                    cores,
                    report.policy,
                    report.makespan,
                    report.lower_bound,
                    report.normalized_makespan(),
                    report.bus_utilization * 100.0,
                    report.average_slowdown(),
                    peak_waste * 100.0,
                );
            }
        }
        println!();
    }
    println!(
        "paper (Section 1): when bandwidth is the bottleneck the distribution of the shared\n\
         resource decides performance — the balance-aware policy tracks the lower bound, the\n\
         oblivious policies leave bandwidth unused."
    );
}
