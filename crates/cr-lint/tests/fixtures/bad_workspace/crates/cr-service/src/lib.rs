//! Fixture serving crate that writes to the client while holding the
//! cache guard, and indexes a slice with an unchecked offset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wire;

use std::io::Write;
use std::sync::Mutex;

/// Streams the cache contents while the guard is live (lock_discipline)
/// and indexes past a client-supplied offset (panic_hygiene).
pub fn dump(cache: &Mutex<Vec<u8>>, offset: usize, out: &mut impl Write) -> std::io::Result<()> {
    let guard = match cache.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    writeln!(out, "first byte past offset: {}", guard[offset])
}
